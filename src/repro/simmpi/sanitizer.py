"""Runtime fabric sanitizer: communication invariants checked per collective.

Where :mod:`repro.lint` checks the *source* for hazards, the sanitizer
checks the *running fabric*: every exchange/allgather/allreduce is
audited for the BSP invariants an engine silently depends on —

* **collective matching** — within one exchange, every message carries
  the same schema (field names and dtypes).  Mixed schemas mean two
  ranks disagree about which collective they are in, the SimMPI analogue
  of mismatched MPI tags; ``Message.concat`` would either crash or,
  worse, silently upcast dtypes and change wire bytes.
* **message conservation** — every element sent is delivered exactly
  once: per destination, the delivered length equals the sum of the
  addressed message lengths.  Fault injection retransmits drops, so
  conservation must hold with faults on; a violation means payload was
  lost outside the FaultPlan's ack/retry protocol.
* **payload sanity** — no NaN reaches an allreduce (a NaN poisons
  min/max termination detection and deadlocks real codes).
* **no-progress detection** — a long run of zero-payload collectives is
  the BSP signature of livelock: every rank keeps voting "not done"
  while nobody sends anything.  After ``deadlock_threshold`` consecutive
  empty collectives the sanitizer raises instead of looping forever.

Violations raise :class:`SanitizerViolation` immediately (fail-fast: the
first broken invariant is the informative one) and are mirrored as
``cat="sanitizer"`` tracer events so they land in trace timelines.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["FabricSanitizer", "SanitizerViolation"]


class SanitizerViolation(RuntimeError):
    """A communication invariant was broken; the run cannot be trusted."""


def _schema_of(msg) -> tuple[tuple[str, str], ...]:
    return tuple((name, str(arr.dtype)) for name, arr in msg.fields.items())


class FabricSanitizer:
    """Per-collective invariant checks for one :class:`~repro.simmpi.fabric.Fabric`.

    One instance lives for one fabric (one run).  ``report()`` summarizes
    what was audited; any violation raises before the collective returns,
    so a completed run audited by a sanitizer has zero violations by
    construction.
    """

    def __init__(
        self,
        num_ranks: int,
        tracer: Tracer | None = None,
        deadlock_threshold: int = 256,
    ) -> None:
        self.num_ranks = num_ranks
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.deadlock_threshold = int(deadlock_threshold)
        self.collectives = 0
        self.messages_checked = 0
        self.elements_checked = 0
        self.drops_reconciled = 0
        self.empty_streak = 0
        self.max_empty_streak = 0

    # -- violation plumbing -------------------------------------------------

    def _violate(self, kind: str, detail: str, **tags) -> None:
        if self.tracer.enabled:
            self.tracer.event(
                "violation", cat="sanitizer", kind=kind, detail=detail, **tags
            )
        raise SanitizerViolation(f"fabric sanitizer [{kind}]: {detail}")

    def _progress(self, kind: str, payload_elements: int) -> None:
        self.collectives += 1
        if payload_elements > 0:
            self.empty_streak = 0
            return
        self.empty_streak += 1
        self.max_empty_streak = max(self.max_empty_streak, self.empty_streak)
        if self.empty_streak >= self.deadlock_threshold:
            self._violate(
                "no-progress",
                f"{self.empty_streak} consecutive zero-payload collectives "
                f"(last: {kind}); the engine is spinning without exchanging "
                f"data — termination detection is likely broken",
                streak=self.empty_streak,
            )

    # -- per-collective checks ----------------------------------------------

    def check_exchange(
        self,
        step: int,
        sent: list[list],
        delivered: list,
        fault_tags: dict,
    ) -> None:
        """Audit one personalized all-to-all.

        ``sent[dst]`` is the list of messages addressed to ``dst`` (in
        source rank order), ``delivered[dst]`` the concatenated inbox.
        """
        schema = None
        total_elements = 0
        for dst in range(self.num_ranks):
            expected = 0
            for msg in sent[dst]:
                expected += len(msg)
                self.messages_checked += 1
                s = _schema_of(msg)
                if schema is None:
                    schema = s
                elif s != schema:
                    self._violate(
                        "collective-mismatch",
                        f"superstep {step}: messages with schemas {schema} "
                        f"and {s} in one exchange — senders disagree about "
                        f"which collective this is",
                        step=step,
                    )
            got = 0 if delivered[dst] is None else len(delivered[dst])
            if got != expected:
                self._violate(
                    "conservation",
                    f"superstep {step}: rank {dst} was sent {expected} "
                    f"element(s) but received {got} — payload lost or "
                    f"duplicated outside the ack/retry protocol",
                    step=step,
                    rank=dst,
                )
            if delivered[dst] is not None and schema is not None:
                got_schema = _schema_of(delivered[dst])
                if got_schema != schema:
                    self._violate(
                        "collective-mismatch",
                        f"superstep {step}: rank {dst} inbox schema "
                        f"{got_schema} differs from wire schema {schema} — "
                        f"concatenation changed dtypes",
                        step=step,
                        rank=dst,
                    )
            total_elements += expected
        self.elements_checked += total_elements
        drops = int(fault_tags.get("drops", 0))
        retries = int(fault_tags.get("retries", 0))
        if drops and not retries:
            self._violate(
                "unacked-drop",
                f"superstep {step}: {drops} message(s) dropped with no "
                f"retry round — the fault path lost payload silently",
                step=step,
            )
        self.drops_reconciled += drops
        self._progress("exchange", total_elements)

    def check_allgather(self, step: int, contributions: list, delivered: list) -> None:
        """Audit one allgather: matching schemas, conservation at every rank."""
        schema = None
        expected = 0
        for src, msg in enumerate(contributions):
            if msg is None or len(msg) == 0:
                continue
            expected += len(msg)
            self.messages_checked += 1
            s = _schema_of(msg)
            if schema is None:
                schema = s
            elif s != schema:
                self._violate(
                    "collective-mismatch",
                    f"superstep {step}: allgather contributions with "
                    f"schemas {schema} and {s} — rank {src} disagrees "
                    f"about which collective this is",
                    step=step,
                    rank=src,
                )
        for dst, inbox in enumerate(delivered):
            got = 0 if inbox is None else len(inbox)
            if got != expected:
                self._violate(
                    "conservation",
                    f"superstep {step}: allgather contributed {expected} "
                    f"element(s) but rank {dst} received {got}",
                    step=step,
                    rank=dst,
                )
        self.elements_checked += expected * self.num_ranks
        self._progress("allgather", expected)

    def check_allreduce(self, values: np.ndarray, op: str) -> None:
        """Audit one allreduce: finite contributions from every rank."""
        if np.isnan(values).any():
            bad = np.flatnonzero(np.isnan(values)).tolist()
            self._violate(
                "nan-reduction",
                f"allreduce({op}) received NaN from rank(s) {bad}; a NaN "
                f"poisons min/max termination detection",
                op=op,
            )
        # Scalar votes are control plane, not payload: they neither feed
        # nor reset the no-progress streak (a spinning engine reduces a
        # termination flag every iteration while moving no data).
        self.collectives += 1

    # -- reporting ----------------------------------------------------------

    def report(self) -> dict:
        """Summary for engine meta / telemetry: what was audited."""
        return {
            "collectives": self.collectives,
            "messages_checked": self.messages_checked,
            "elements_checked": self.elements_checked,
            "drops_reconciled": self.drops_reconciled,
            "max_empty_streak": self.max_empty_streak,
            "violations": 0,  # violations raise; a report implies none
        }
