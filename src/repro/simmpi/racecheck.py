"""Runtime race & arena-lifetime checker for the parallel backends.

Where :mod:`repro.lint`'s ``shm`` pack checks the *source* for ownership
hazards, this module checks the *running* backends: the invariants the
PR 8 zero-copy transport and the parked thread crew silently depend on
are instrumented and verified while a run executes —

* **arena generations (process backend)** — every ``lazy=True`` result
  is a :class:`~repro.simmpi.fabric.ShmMessage` handle into a
  double-buffered per-worker out arena.  A handle minted at flip ``f``
  is valid only while the worker's flip counter is below ``f + 2``; one
  more lazy call recycles the arena underneath it.  Each minted handle
  carries its generation, and materializing (or re-shipping) a handle
  past its window raises :class:`StaleViewError` instead of silently
  reading bytes the next phase already overwrote.
* **arena lifetime (always on)** — closing the team invalidates every
  live handle it minted.  Touching one afterwards raises
  :class:`ArenaClosedError` — a clear diagnosis where the raw
  ``multiprocessing.shared_memory`` failure mode is a ``BufferError``
  during interpreter shutdown or a read from an unlinked mapping.
* **shared-write intervals (thread backend)** — rank objects share
  read-only arrays by identity (the owner map, partition boundaries).
  The tracker finds every ndarray reachable from two or more ranks'
  attributes at team construction, then block-checksums them around each
  ``parallel=True`` phase.  A changed block means a rank task wrote
  memory another concurrently running task can read, with no fabric
  barrier in between — the lockset-lite definition of a data race here,
  because phases are exactly the barrier-delimited regions.

Violations raise immediately (fail-fast, like the fabric sanitizer) and
are mirrored as ``cat="racecheck"`` tracer events; a completed run's
``report()`` lands in ``result.meta["racecheck"]`` with zero violations
by construction.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "ArenaClosedError",
    "RaceCheckViolation",
    "RaceChecker",
    "SharedArrayTracker",
    "StaleViewError",
]


class RaceCheckViolation(RuntimeError):
    """A runtime race-check invariant was broken; the run cannot be trusted."""


class StaleViewError(RaceCheckViolation):
    """A lazy shared-memory handle was read after its arena generation
    was recycled by a later call on the same team."""


class ArenaClosedError(RuntimeError):
    """A lazy shared-memory handle was read after the owning team closed
    and released its arenas.

    Deliberately *not* a :class:`RaceCheckViolation`: the lifetime guard
    is always on (it replaces a crash), while generation checks only run
    under ``racecheck=True``.
    """


class RaceChecker:
    """Violation plumbing + audit counters for one team (one run).

    One instance lives for one :class:`~repro.simmpi.executor.RankTeam`.
    The team's instrumentation increments the counters and calls
    :meth:`_violate` on a broken invariant; ``report()`` summarizes what
    was verified.  Any violation raises before the offending bytes are
    used, so a completed run audited by a checker has zero violations by
    construction.
    """

    def __init__(self, backend: str, tracer: Tracer | None = None) -> None:
        self.backend = backend
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.handles_minted = 0
        self.handles_checked = 0
        self.shared_arrays = 0
        self.regions_checked = 0
        if self.tracer.enabled:
            self.tracer.event("enabled", cat="racecheck", backend=backend)

    def _violate(self, kind: str, detail: str, **tags) -> None:
        if self.tracer.enabled:
            self.tracer.event(
                "violation", cat="racecheck", kind=kind, detail=detail, **tags
            )
        exc = StaleViewError if kind == "stale-view" else RaceCheckViolation
        raise exc(f"racecheck [{kind}]: {detail}")

    def report(self) -> dict:
        """Summary for engine meta / telemetry: what was verified."""
        return {
            "backend": self.backend,
            "handles_minted": self.handles_minted,
            "handles_checked": self.handles_checked,
            "shared_arrays": self.shared_arrays,
            "regions_checked": self.regions_checked,
            "violations": 0,  # violations raise; a report implies none
        }


class SharedArrayTracker:
    """Write-interval detector for identity-shared arrays (thread backend).

    At construction it scans every rank object's attributes for ndarrays
    reachable from two or more ranks — those are the arrays the executor
    contract declares read-only during parallel phases (the static-side
    analogue is the ``# repro: shared-ro:`` annotation).  Around each
    ``parallel=True`` call the team snapshots per-block checksums of
    every shared array; a block that changed across the phase is a write
    from inside a concurrent rank task with no intervening fabric
    barrier, reported with the array's attribute name and the
    approximate byte interval the write landed in.

    Checksums are block sums (``np.add.reduceat`` over a uint8 view), so
    a write that preserves a block's byte sum can in principle slip
    through — this is a race *detector*, not a memory model proof.
    """

    def __init__(self, checker: RaceChecker, ranks, blocks: int = 64) -> None:
        self.checker = checker
        seen: dict[int, list] = {}
        for rank_idx, rank in enumerate(ranks):
            for attr, value in vars(rank).items():
                if isinstance(value, np.ndarray) and value.nbytes > 0:
                    entry = seen.setdefault(id(value), [attr, value, []])
                    entry[2].append(rank_idx)
        self.arrays = []
        for attr, arr, rank_ids in seen.values():
            if len(rank_ids) < 2:
                continue
            n = arr.nbytes
            nblocks = min(blocks, n)
            # Block start offsets for reduceat: strictly increasing since
            # nblocks <= n, so every block is non-empty.
            edges = (np.arange(nblocks, dtype=np.int64) * n) // nblocks
            self.arrays.append((attr, arr, tuple(rank_ids), edges, n))
        checker.shared_arrays = len(self.arrays)
        self._snapshot: list[np.ndarray] | None = None

    def _checksums(self, arr: np.ndarray, edges: np.ndarray) -> np.ndarray:
        flat = arr if arr.flags.c_contiguous else np.ascontiguousarray(arr)
        return np.add.reduceat(flat.reshape(-1).view(np.uint8), edges, dtype=np.int64)

    def before_parallel(self) -> None:
        self._snapshot = [
            self._checksums(arr, edges) for _, arr, _, edges, _ in self.arrays
        ]

    def after_parallel(self, method: str) -> None:
        snapshot, self._snapshot = self._snapshot, None
        if snapshot is None:
            return
        self.checker.regions_checked += 1
        for before, (attr, arr, rank_ids, edges, nbytes) in zip(snapshot, self.arrays):
            after = self._checksums(arr, edges)
            changed = np.flatnonzero(before != after)
            if changed.size == 0:
                continue
            lo = int(edges[changed[0]])
            last = int(changed[-1])
            hi = int(edges[last + 1]) if last + 1 < len(edges) else nbytes
            self.checker._violate(
                "shared-write",
                f"parallel phase {method!r} wrote shared array {attr!r} "
                f"(reachable from ranks {list(rank_ids)}) in byte interval "
                f"~[{lo}, {hi}) with no intervening fabric barrier — "
                f"concurrent rank tasks may observe the torn write",
                method=method,
                attr=attr,
                lo=lo,
                hi=hi,
            )
