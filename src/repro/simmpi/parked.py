"""Resident parked rank workers: the thread and process backends.

PR 5's backends paid a dispatch tax on every phase: the thread team
submitted one pool task per rank per call, and the process team pickled a
command tuple onto a pipe per worker per call.  The profiler (PR 6)
priced that tax precisely — dispatch plus serialization was the majority
of the parallel backends' overhead versus serial.  This module replaces
per-call submission with **resident parked workers**:

* :class:`ParkedThreadTeam` — one daemon thread per worker slot, parked
  on a ``threading.Barrier`` pair.  A phase costs two barrier crossings
  (release + join) for the whole team instead of one pool submission per
  rank, and every worker wakes simultaneously, eliminating submission
  skew.
* :class:`ParkedProcessTeam` — one forked worker process per slot,
  parked on a per-worker ``multiprocessing`` go-semaphore.  Commands
  travel through a fixed per-worker shared-memory **control slot** (a
  mode word plus the pickled metadata tuple); array payloads ride the
  existing cmd/rep arenas.  Oversized metadata spills to the cmd arena
  tail — never the pipe, because a parked worker is not reading and a
  large pipe write would deadlock the dispatcher.  Semaphores, not a
  shared barrier, park the processes deliberately: releasing one never
  blocks, so a SIGKILLed worker cannot wedge the dispatcher (a
  ``multiprocessing.Barrier`` waiter that dies leaves ``notify_all``
  waiting forever for its wake acknowledgement); death and stalls are
  detected on the reply pipe instead.

The process team also implements the **zero-copy lazy transport** for
``call(..., lazy=True)`` phases (outbox flushes): the worker encodes its
result into a worker-owned *out arena* and the driver receives
:class:`~repro.simmpi.fabric.ShmMessage` handles instead of materialized
bundles.  The fabric routes the handles to their destination ranks
(:meth:`Message.concat` defers mixed pieces as ``LazyConcat``), and the
destination worker attaches the owning worker's arena by name and copies
each field out exactly once — one copy end to end, zero pickling.

Safety invariants of the lazy transport:

* **Decode-then-execute**: a worker materializes (copies) every lazy
  argument before running the rank method, so nothing it later writes
  can alias its inputs.
* **Double-buffered out arenas**: each worker alternates between two out
  arenas, so the reply of lazy call *N+1* never overwrites payload from
  call *N* that another (slower) worker is still reading.  Handles are
  therefore valid until the owner's next-but-one lazy reply — the
  engines' flush → exchange → apply pattern consumes them within one.
* **Retired-arena graveyard**: growing an out arena must not unlink the
  old segment — in-flight handles still name it and a consumer may not
  have mapped it yet — so old segments are retired and unlinked only at
  ``close()``.

Lifecycle: ``close()`` is idempotent, survives dead workers (stop
tokens for the living, terminate for the wedged), and always unlinks
every slot and arena including the graveyard — a worker dying mid-call
raises :class:`WorkerError` *after* the team has torn itself down, so
``/dev/shm`` never leaks.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import pickle
import struct
import threading
import time
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Sequence

from repro.obs.tracer import Tracer
from repro.simmpi.executor import (
    _ALIGN,
    _MIN_ARENA,
    RankTeam,
    SerialTeam,
    WorkerError,
    _decode,
    _encode,
    _PayloadWriter,
)
from repro.simmpi.fabric import LazyConcat, ShmMessage
from repro.simmpi.racecheck import RaceChecker, SharedArrayTracker

__all__ = ["ParkedProcessTeam", "ParkedThreadTeam"]

# Control-slot protocol (process backend).  Each worker owns one small
# shared-memory slot; the parent writes a header + payload, then releases
# that worker's go-semaphore.
_MODE_CALL = 1  # pickled command inline in the slot after the header
_MODE_CALL_ARENA = 2  # command in the cmd arena (offset/length in header)
_MODE_STOP = 3  # exit the worker loop

_SLOT_HEADER = struct.Struct("<qqq")  # (mode, a, b)
_SLOT_SIZE = 1 << 16

#: Sentinel in the command tuple's ``cmd_name`` field for arena-mode
#: commands: "the arena you read this command from".
_CMD_NAME_FROM_SLOT = "@slot"

#: How long the dispatcher waits for a dispatched worker's reply before
#: declaring it wedged and tearing the team down.  A dead worker is
#: detected immediately (its pipe end closes); the timeout only fires
#: for a live-but-stuck worker.  Tests shrink this.
_WORKER_TIMEOUT = 60.0


class ParkedThreadTeam(RankTeam):
    """Parallel phases run on resident rank threads parked on a barrier.

    Rank ``i`` belongs to worker thread ``i % crew`` (the crew is capped
    at the rank count).  A ``parallel=True`` call publishes the command,
    releases the ``go`` barrier, and joins the ``done`` barrier; workers
    never die between calls, so there is no submission latency and no
    skew — everyone starts on the same barrier edge.  Control calls and
    single-rank teams run inline (the rank objects live in-process).

    Exceptions raised by rank methods are captured per rank and re-raised
    in the driver, lowest rank first, with their original type; the team
    survives a failed call.
    """

    backend = "thread"

    def __init__(
        self,
        ranks: Sequence,
        num_workers: int,
        tracer: Tracer | None = None,
        racecheck: bool = False,
    ) -> None:
        super().__init__(len(ranks), tracer)
        self.ranks = list(ranks)
        self.num_workers = max(1, int(num_workers))
        self._closed = False
        self._tracker = None
        if racecheck:
            # Lockset-lite race detection: arrays shared by identity across
            # rank objects are the read-only inputs of every parallel phase;
            # the tracker checksums them around each phase.
            self.racecheck = RaceChecker(self.backend, self.tracer)
            self._tracker = SharedArrayTracker(self.racecheck, ranks)
        crew = min(self.num_workers, max(1, len(self.ranks)))
        self._assign = [
            [i for i in range(len(self.ranks)) if i % crew == t] for t in range(crew)
        ]
        self._go = threading.Barrier(crew + 1)
        self._done = threading.Barrier(crew + 1)
        self._cmd: tuple | None = None
        self._results: list = []
        self._errors: list = []
        self._starts: list = []
        self._durations: list = []
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(t,),
                daemon=True,
                name=f"repro-parked-rank-{t}",
            )
            for t in range(crew)
        ]
        for thread in self._threads:
            thread.start()

    def _worker_loop(self, tid: int) -> None:
        while True:
            try:
                self._go.wait()
            except threading.BrokenBarrierError:
                return
            method, per_rank, common = self._cmd
            for i in self._assign[tid]:
                args = (tuple(per_rank[i]) + common) if per_rank is not None else common
                t0 = time.perf_counter()
                try:
                    self._results[i] = getattr(self.ranks[i], method)(*args)
                except BaseException as exc:  # re-raised by the driver
                    self._errors[i] = exc
                self._starts[i] = t0
                self._durations[i] = time.perf_counter() - t0
            try:
                self._done.wait()
            except threading.BrokenBarrierError:
                return

    def call(self, method, per_rank=None, common=(), parallel=False, lazy=False):
        if self._closed:
            raise RuntimeError("team is closed")
        if not parallel or self.num_ranks == 1:
            return SerialTeam.call(self, method, per_rank, common, parallel)
        profiling = self.tracer.enabled
        t_begin = time.perf_counter() if profiling else 0.0
        n = self.num_ranks
        self._results = [None] * n
        self._errors = [None] * n
        self._starts = [0.0] * n
        self._durations = [0.0] * n
        self._cmd = (method, per_rank, tuple(common))
        tracker = self._tracker
        if tracker is not None:
            tracker.before_parallel()
        self._go.wait()
        t_dispatched = time.perf_counter() if profiling else t_begin
        self._done.wait()
        for exc in self._errors:
            if exc is not None:
                raise exc
        if tracker is not None:
            tracker.after_parallel(method)
        starts, durations = self._starts, self._durations
        self._account(method, durations, starts)
        if profiling:
            self._profile_call(
                method, True, t_begin, t_dispatched, time.perf_counter(),
                starts, durations,
            )
        return self._results

    def call_one(self, rank, method, *args):
        if self._closed:
            raise RuntimeError("team is closed")
        return getattr(self.ranks[rank], method)(*args)

    def close(self):
        if self._closed:
            return
        self._closed = True
        # Breaking the barriers releases parked workers (they exit on
        # BrokenBarrierError) and any worker mid-phase exits at the next
        # barrier it reaches.  Idempotent by the _closed latch.
        self._go.abort()
        self._done.abort()
        for thread in self._threads:
            thread.join(timeout=5)


# -- process backend ---------------------------------------------------------


def _attach_raw(name: str):
    """Map ``/dev/shm/<name>`` directly; returns ``(buffer, close)``.

    In Python 3.11 a ``SharedMemory`` *attach* also registers with a
    resource tracker, and a forked worker cannot reuse the parent's
    tracker (not its child), so it would spawn one of its own that later
    mistakes the parent-owned segments for leaks.  A raw mmap has no
    tracker side effects; the ``SharedMemory`` path is the non-/dev/shm
    fallback.
    """
    path = "/dev/shm/" + name.lstrip("/")
    try:
        fd = os.open(path, os.O_RDWR)
    except OSError:  # pragma: no cover - non-/dev/shm platforms
        segment = shared_memory.SharedMemory(name=name)
        return segment.buf, segment.close
    try:
        mapped = mmap.mmap(fd, os.fstat(fd).st_size)
    finally:
        os.close(fd)
    return mapped, mapped.close


def _parked_worker_main(conn, slot, go, ranks: dict, profiled: bool) -> None:
    """Process-backend worker loop: park, decode, dispatch, encode, reply.

    Runs in a forked child that inherited ``ranks`` (its subset of the
    team's rank objects) by copy-on-write.  The parent's fabric, tracer
    and remaining ranks also exist in this address space but are never
    touched — all interaction is the control slot, the go-semaphore, the
    reply pipe, and the shared-memory arenas named in each command.

    Arena mappings are cached by *name* (a worker may read several other
    workers' out arenas in one lazy call); names churn only when the
    parent grows an arena, so the cache stays small.

    ``profiled`` is latched at fork time from the team's tracer: when a
    real tracer is attached, each reply carries the worker's measured
    decode/encode seconds and per-task start timestamps (``perf_counter``
    is CLOCK_MONOTONIC on Linux, so worker and driver timestamps share a
    clock); when tracing is off only the per-task durations are taken.
    """
    attached: dict[str, tuple] = {}  # name -> (buffer, close)

    def attach(name: str):
        cached = attached.get(name)
        if cached is None:
            cached = attached[name] = _attach_raw(name)
        return cached[0]

    try:
        while True:
            go.acquire()
            mode, a, b = _SLOT_HEADER.unpack_from(slot.buf, 0)
            if mode == _MODE_STOP:
                break
            if mode == _MODE_CALL:
                cmd = pickle.loads(bytes(slot.buf[_SLOT_HEADER.size:_SLOT_HEADER.size + a]))
                slot_arena = None
            else:  # _MODE_CALL_ARENA
                (nlen,) = struct.unpack_from("<q", slot.buf, _SLOT_HEADER.size)
                name_off = _SLOT_HEADER.size + 8
                slot_arena = bytes(slot.buf[name_off:name_off + nlen]).decode("ascii")
                cmd = pickle.loads(bytes(attach(slot_arena)[a:a + b]))
            (method, common_meta, per_metas, only,
             cmd_name, rep_name, rep_size, out_name, out_size) = cmd
            if cmd_name == _CMD_NAME_FROM_SLOT:
                cmd_name = slot_arena
            cmd_buf = attach(cmd_name) if cmd_name else b""
            dec_s = enc_s = 0.0
            try:
                td = time.perf_counter() if profiled else 0.0
                common = tuple(_decode(m, cmd_buf, attach) for m in common_meta)
                if profiled:
                    dec_s += time.perf_counter() - td
                writer = _PayloadWriter()
                metas = []
                for rk in only if only is not None else sorted(ranks):
                    if per_metas is not None:
                        td = time.perf_counter() if profiled else 0.0
                        # Decode-then-execute: every argument is an owned
                        # copy before the rank method runs, so the encode
                        # below can never overwrite bytes still in use.
                        args = tuple(_decode(m, cmd_buf, attach) for m in per_metas[rk])
                        if profiled:
                            dec_s += time.perf_counter() - td
                        args += common
                    else:
                        args = common
                    t0 = time.perf_counter()
                    result = getattr(ranks[rk], method)(*args)
                    duration = time.perf_counter() - t0
                    metas.append((rk, _encode(result, writer), duration, t0))
            except BaseException:
                conn.send(("err", method, traceback.format_exc()))
                continue
            te = time.perf_counter() if profiled else 0.0
            payload = None
            if out_name is not None and writer.total <= out_size:
                # Lazy reply: park the payload in this worker's out arena;
                # the parent hands out ShmMessage handles, nothing moves.
                writer.write_into(attach(out_name))
                where = "out"
            elif out_name is None and writer.total <= rep_size:
                writer.write_into(attach(rep_name))
                where = "rep"
            else:
                # Reply outgrew its arena: spill this one over the pipe and
                # report the size so the parent grows the arena for next time.
                payload = bytearray(writer.total)
                writer.write_into(payload)
                where = "pipe"
            if profiled:
                enc_s = time.perf_counter() - te
            conn.send(("res", metas, where, writer.total, dec_s, enc_s))
            if payload is not None:
                conn.send_bytes(bytes(payload))
    finally:
        for buffer, close in attached.values():
            close()
        conn.close()


def _lazy_decode(meta, arena_name: str, buf, register=None):
    """Parent-side decode of an out-arena reply: Messages stay parked.

    ``Message`` metas become :class:`ShmMessage` handles referencing the
    worker's out arena; containers recurse; everything else (plain
    arrays, empty bundles, scalars) materializes — only bulk message
    payloads are worth keeping lazy.  ``register`` is called with every
    minted handle so the team can stamp its arena generation and track
    it for close-time invalidation.
    """
    tag = meta[0]
    if tag == "m":
        refs = tuple((k, off, dt, shape[0]) for k, off, dt, shape in meta[1])
        handle = ShmMessage(arena_name, refs, buf)
        if register is not None:
            register(handle)
        return handle
    if tag == "t":
        return tuple(_lazy_decode(m, arena_name, buf, register) for m in meta[1])
    if tag == "l":
        return [_lazy_decode(m, arena_name, buf, register) for m in meta[1]]
    if tag == "d":
        return {k: _lazy_decode(m, arena_name, buf, register) for k, m in meta[1]}
    return _decode(meta, buf)


class ParkedProcessTeam(RankTeam):
    """Parallel phases run on resident forked workers parked on semaphores.

    Rank ``i`` lives in worker ``i % num_workers`` — forked after the
    engine constructed (and seeded) the rank objects, so the initial
    state arrives by copy-on-write, never pickled.  Steady-state traffic
    is pickle-free for arrays: payloads travel through per-worker
    shared-memory arenas; only tiny metadata tuples cross the control
    slots and reply pipes.  Each worker parks on its own go-semaphore;
    the dispatcher arms every involved slot first, then releases the
    semaphores back to back, so wakeups are skew-free and — unlike a
    shared barrier — a dead worker can never wedge the dispatcher;
    workers persist for the team's whole run — one fork per run,
    thousands of supersteps served.

    ``call(..., lazy=True)`` results stay in the producing worker's
    double-buffered out arenas as :class:`ShmMessage` handles (zero-copy
    transport); :meth:`set_transport_lazy` disables this when a
    driver-side consumer (the fabric sanitizer) must read payload bytes
    between calls.
    """

    backend = "process"

    def __init__(
        self,
        ranks: Sequence,
        num_workers: int,
        tracer: Tracer | None = None,
        racecheck: bool = False,
    ) -> None:
        super().__init__(len(ranks), tracer)
        if racecheck:
            # Generation checks on lazy handles; the thread backend's
            # shared-array tracker has no process-side analogue (writes
            # happen in forked address spaces the parent cannot see).
            self.racecheck = RaceChecker(self.backend, self.tracer)
        #: Weakrefs to every ShmMessage this team minted; ``close()``
        #: detaches the live ones from their arenas (always on — this is
        #: the use-after-close guard, independent of ``racecheck``).
        self._minted: list[weakref.ref] = []
        ctx = multiprocessing.get_context("fork")
        workers = max(1, min(int(num_workers), len(ranks)))
        self.num_workers = workers
        self._rank_ids = [
            [i for i in range(len(ranks)) if i % workers == w] for w in range(workers)
        ]
        self._closed = False
        self._lazy_ok = True
        self._gos = [ctx.Semaphore(0) for _ in range(workers)]
        self._conns = []
        self._procs = []
        self._slots: list[shared_memory.SharedMemory] = []
        self._cmd: list[shared_memory.SharedMemory | None] = []
        self._rep: list[shared_memory.SharedMemory] = []
        # Double-buffered lazy out arenas: index = (#lazy calls) % 2, so
        # the reply of lazy call N+1 never overwrites payload from call N
        # that a slower consumer is still reading.
        self._out: list[list[shared_memory.SharedMemory]] = []
        self._out_flip = [0] * workers
        #: Out arenas retired by growth; their names may still be held by
        #: in-flight ShmMessage handles, so they are unlinked only at close.
        self._retired: list[shared_memory.SharedMemory] = []
        for w in range(workers):
            slot = shared_memory.SharedMemory(create=True, size=_SLOT_SIZE)
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_parked_worker_main,
                args=(
                    child_conn,
                    slot,
                    self._gos[w],
                    {i: ranks[i] for i in self._rank_ids[w]},
                    self.tracer.enabled,
                ),
                daemon=True,
                name=f"repro-rank-worker-{w}",
            )
            proc.start()
            child_conn.close()
            self._slots.append(slot)
            self._conns.append(parent_conn)
            self._procs.append(proc)
            self._cmd.append(None)
            self._rep.append(shared_memory.SharedMemory(create=True, size=_MIN_ARENA))
            self._out.append([
                shared_memory.SharedMemory(create=True, size=_MIN_ARENA),
                shared_memory.SharedMemory(create=True, size=_MIN_ARENA),
            ])

    def set_transport_lazy(self, enabled: bool) -> None:
        self._lazy_ok = bool(enabled)

    # -- lazy-handle lifetime & generation guards ---------------------------

    def _register_handle(self, handle: ShmMessage, worker: int, gen: int) -> None:
        """Stamp a freshly minted handle with its mint generation.

        ``gen`` is the owning worker's out-arena flip counter *after* the
        minting dispatch; the handle's double-buffered arena half is
        re-armed for writing by the second lazy dispatch after the mint,
        so the handle is stale once ``_out_flip[worker] >= gen + 2``.
        """
        handle._team_ref = weakref.ref(self)
        handle._worker = worker
        handle._gen = gen
        self._minted.append(weakref.ref(handle))
        if self.racecheck is not None:
            self.racecheck.handles_minted += 1

    def _check_handle(self, handle: ShmMessage) -> None:
        """Generation check for one team-minted handle (``racecheck=True``)."""
        checker = self.racecheck
        if checker is None:
            return
        checker.handles_checked += 1
        current = self._out_flip[handle._worker]
        if current >= handle._gen + 2:
            checker._violate(
                "stale-view",
                f"lazy handle into worker {handle._worker}'s out arena "
                f"({handle.arena_name!r}, minted at generation "
                f"{handle._gen}) used at generation {current}: the "
                f"double-buffered arena was recycled by later lazy calls "
                f"and its payload bytes overwritten",
                worker=handle._worker,
                minted_gen=handle._gen,
                current_gen=current,
            )

    def _check_lazy_args(self, per_rank, common) -> None:
        """Validate every team-minted handle about to ship into a worker.

        Workers copy a shipped handle's bytes straight out of the named
        arena (even when the driver already materialized ``fields``), so
        staleness must be caught here, before dispatch.
        """
        stack = list(common)
        if per_rank is not None:
            stack.extend(a for args in per_rank for a in args)
        while stack:
            obj = stack.pop()
            if isinstance(obj, ShmMessage):
                ref = obj._team_ref
                if ref is not None and ref() is self:
                    self._check_handle(obj)
            elif isinstance(obj, LazyConcat):
                stack.extend(obj.pieces)
            elif isinstance(obj, (tuple, list)):
                stack.extend(obj)
            elif isinstance(obj, dict):
                stack.extend(obj.values())

    @staticmethod
    def _grown(segment: shared_memory.SharedMemory | None, nbytes: int):
        """A segment of at least ``nbytes``; reuses or replaces ``segment``.

        POSIX keeps an unlinked segment alive while mapped, so the old one
        can be unlinked immediately — cmd/rep names are only ever read
        within the call that sent them.  (Out arenas must NOT come through
        here; see :meth:`_regrown_out`.)
        """
        if segment is not None and segment.size >= nbytes:
            return segment
        if segment is not None:
            segment.close()
            segment.unlink()
        size = max(_MIN_ARENA, 1 << (nbytes - 1).bit_length())
        return shared_memory.SharedMemory(create=True, size=size)

    def _regrown_out(self, w: int, idx: int, nbytes: int) -> None:
        """Replace out arena ``(w, idx)`` with one of >= ``nbytes``.

        The old segment goes to the retirement graveyard instead of being
        unlinked: handles from the previous lazy call may still name it,
        and a consumer worker that has not yet mapped that name must still
        be able to open it.  Graveyard segments are unlinked at close; the
        power-of-two growth schedule bounds their total size by roughly
        the final arena size.
        """
        old = self._out[w][idx]
        if old.size >= nbytes:
            return
        self._retired.append(old)
        size = max(_MIN_ARENA, 1 << (nbytes - 1).bit_length())
        self._out[w][idx] = shared_memory.SharedMemory(create=True, size=size)

    def _fail(self, detail: str):
        """Tear the team down after a worker death, then raise WorkerError.

        Closing *before* raising is the /dev/shm-leak fix: the old GC
        backstop only ran if the (now broken) team object happened to be
        collected, leaving arenas linked when the driver aborted on the
        error.
        """
        self.close()
        raise WorkerError(detail)

    def _dispatch(self, method, per_rank, common, only_rank=None,
                  profiling=False, lazy=False):
        """Arm the involved control slots, then release their semaphores.

        Returns ``(involved, lazy_idx, ser_out)``: the workers taking part
        in the call, the out-arena index armed per involved worker when
        ``lazy``, and the measured parent-side encode + arena-write
        seconds (0.0 unless ``profiling``).  Uninvolved workers stay
        parked — they are never woken.
        """
        involved = (
            tuple(range(self.num_workers)) if only_rank is None
            else (only_rank % self.num_workers,)
        )
        ser_out = 0.0
        lazy_idx: dict[int, int] = {}
        for w in involved:
            t0 = time.perf_counter() if profiling else 0.0
            writer = _PayloadWriter()
            common_meta = tuple(_encode(a, writer) for a in common)
            per_metas = None
            if per_rank is not None:
                ids = self._rank_ids[w] if only_rank is None else [only_rank]
                per_metas = {
                    i: tuple(_encode(a, writer) for a in per_rank[i]) for i in ids
                }
            out_name = out_size = None
            if lazy:
                idx = self._out_flip[w] & 1
                self._out_flip[w] += 1
                lazy_idx[w] = idx
                out = self._out[w][idx]
                out_name, out_size = out.name, out.size
            only = None if only_rank is None else [only_rank]
            cmd_name = None
            if writer.total:
                self._cmd[w] = self._grown(self._cmd[w], writer.total)
                cmd_name = self._cmd[w].name
            cmd = (method, common_meta, per_metas, only,
                   cmd_name, self._rep[w].name, self._rep[w].size,
                   out_name, out_size)
            blob = pickle.dumps(cmd, protocol=pickle.HIGHEST_PROTOCOL)
            slot_buf = self._slots[w].buf
            header = _SLOT_HEADER.size
            if header + len(blob) <= _SLOT_SIZE:
                if writer.total:
                    writer.write_into(self._cmd[w].buf)
                slot_buf[header:header + len(blob)] = blob
                _SLOT_HEADER.pack_into(slot_buf, 0, _MODE_CALL, len(blob), 0)
            else:
                # Metadata overflow: append the command to the cmd arena
                # tail (the worker is parked, not reading its pipe — a
                # large pipe write here would deadlock the dispatcher).
                meta_off = -(-writer.total // _ALIGN) * _ALIGN
                cmd_with_name = cmd[:4] + (_CMD_NAME_FROM_SLOT,) + cmd[5:]
                blob = pickle.dumps(cmd_with_name, protocol=pickle.HIGHEST_PROTOCOL)
                self._cmd[w] = self._grown(self._cmd[w], meta_off + len(blob))
                if writer.total:
                    writer.write_into(self._cmd[w].buf)
                self._cmd[w].buf[meta_off:meta_off + len(blob)] = blob
                name = self._cmd[w].name.encode("ascii")
                struct.pack_into("<q", slot_buf, header, len(name))
                slot_buf[header + 8:header + 8 + len(name)] = name
                _SLOT_HEADER.pack_into(
                    slot_buf, 0, _MODE_CALL_ARENA, meta_off, len(blob)
                )
            if profiling:
                ser_out += time.perf_counter() - t0
        # All slots are armed before any worker wakes, so the back-to-back
        # releases are one skew-free dispatch edge.  Release never blocks;
        # a dead worker simply leaves its token unconsumed and is caught
        # on the reply pipe in _gather.
        for w in involved:
            self._gos[w].release()
        return involved, lazy_idx, ser_out

    def _gather(self, involved, lazy_idx, results, durations, starts=None,
                profiling=False, method="?"):
        """Collect one reply per involved worker.

        Returns ``(ser_in, transport_in, spills)``: parent-side reply
        materialization seconds when ``profiling``, the worker-side
        arena copy seconds carried in each reply (payload movement, not
        serialization — nothing is pickled), and the count of replies
        that overflowed their arena onto the pipe.  A rank-method
        exception surfaces as :class:`WorkerError` *after* all replies
        drain (the team survives); a dead worker tears the team down
        first.
        """
        failure = None
        ser_in = 0.0
        transport_in = 0.0
        spills = 0
        for w in involved:
            try:
                # A dead worker's pipe end closes, so poll() returns
                # immediately and recv() raises EOFError; the timeout only
                # fires for a live-but-wedged worker.
                if not self._conns[w].poll(_WORKER_TIMEOUT):
                    self._fail(
                        f"rank worker {w} stalled in {method!r} "
                        f"(no reply in {_WORKER_TIMEOUT:.0f}s)"
                    )
                msg = self._conns[w].recv()
            except (EOFError, OSError):
                self._fail(f"rank worker {w} died mid-call in {method!r}")
            if msg[0] == "err":
                if failure is None:
                    failure = (w, msg[1], msg[2])
                continue
            _, metas, where, total, worker_dec, worker_enc = msg
            transport_in += worker_dec + worker_enc
            arena_name = None
            register = None
            if where == "rep":
                buf = self._rep[w].buf
            elif where == "out":
                out = self._out[w][lazy_idx[w]]
                arena_name, buf = out.name, out.buf

                def register(handle, _w=w, _gen=self._out_flip[w]):
                    self._register_handle(handle, _w, _gen)
            else:  # pipe spill
                spills += 1
                buf = self._conns[w].recv_bytes()
                if w in lazy_idx:
                    self._regrown_out(w, lazy_idx[w], total)
                else:
                    self._rep[w] = self._grown(self._rep[w], total)
            t0 = time.perf_counter() if profiling else 0.0
            for rk, meta, duration, start in metas:
                if arena_name is not None:
                    results[rk] = _lazy_decode(meta, arena_name, buf, register)
                else:
                    results[rk] = _decode(meta, buf)
                durations[rk] = duration
                if starts is not None:
                    starts[rk] = start
            if profiling:
                ser_in += time.perf_counter() - t0
        if failure is not None:
            w, failed_method, tb = failure
            raise WorkerError(
                f"rank worker {w} failed in {failed_method!r}:\n{tb.rstrip()}"
            )
        return ser_in, transport_in, spills

    def call(self, method, per_rank=None, common=(), parallel=False, lazy=False):
        if self._closed:
            raise RuntimeError("team is closed")
        profiling = self.tracer.enabled
        t_begin = time.perf_counter() if profiling else 0.0
        if self.racecheck is not None:
            self._check_lazy_args(per_rank, common)
        if per_rank is not None:
            per_rank = {i: tuple(args) for i, args in enumerate(per_rank)}
        involved, lazy_idx, ser_out = self._dispatch(
            method, per_rank, tuple(common),
            profiling=profiling, lazy=lazy and self._lazy_ok,
        )
        t_dispatched = time.perf_counter() if profiling else t_begin
        results: list = [None] * self.num_ranks
        durations = [0.0] * self.num_ranks
        starts = [0.0] * self.num_ranks if profiling else None
        ser_in, transport_in, spills = self._gather(
            involved, lazy_idx, results, durations, starts, profiling, method
        )
        if parallel:
            self._account(method, durations, starts)
        if profiling:
            self._profile_call(
                method, parallel, t_begin, t_dispatched, time.perf_counter(),
                starts, durations, ser_out, ser_in, spills, transport_in,
            )
        return results

    def call_one(self, rank, method, *args):
        if self._closed:
            raise RuntimeError("team is closed")
        profiling = self.tracer.enabled
        t_begin = time.perf_counter() if profiling else 0.0
        if self.racecheck is not None:
            self._check_lazy_args([args], ())
        involved, lazy_idx, ser_out = self._dispatch(
            method, {rank: args}, (), only_rank=rank, profiling=profiling
        )
        t_dispatched = time.perf_counter() if profiling else t_begin
        results: list = [None] * self.num_ranks
        durations = [0.0] * self.num_ranks
        starts = [0.0] * self.num_ranks if profiling else None
        ser_in, transport_in, spills = self._gather(
            involved, lazy_idx, results, durations, starts, profiling, method
        )
        if profiling:
            self._profile_call(
                method, False, t_begin, t_dispatched, time.perf_counter(),
                [starts[rank]], [durations[rank]], ser_out, ser_in, spills,
                transport_in,
            )
        return results[rank]

    def close(self):
        if self._closed:
            return
        self._closed = True
        # Orderly shutdown: arm a STOP in each living worker's slot and
        # hand it a token.  A parked worker wakes, reads STOP, and exits;
        # a worker still mid-call re-parks when it finishes, consumes the
        # token, and exits then.  Dead workers are skipped; wedged ones
        # fall through to terminate below.
        for w, proc in enumerate(self._procs):
            if proc.is_alive():
                _SLOT_HEADER.pack_into(self._slots[w].buf, 0, _MODE_STOP, 0, 0)
                self._gos[w].release()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung-worker backstop
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        # Detach every live handle we minted *before* closing the arenas:
        # an un-materialized handle would otherwise hold an exported
        # memoryview (making segment.close() raise BufferError and leaving
        # a silent read-from-unlinked-mapping window) — detached handles
        # fail loud with ArenaClosedError instead.
        for ref in self._minted:
            handle = ref()
            if handle is not None:
                handle._buf = None
        self._minted.clear()
        segments = [
            *self._slots, *self._cmd, *self._rep, *self._retired,
            *(seg for pair in self._out for seg in pair),
        ]
        for segment in segments:
            if segment is None:
                continue
            try:
                segment.close()
            except BufferError:  # a leaked ShmMessage still views it
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __del__(self):  # pragma: no cover - GC backstop for leaked teams
        try:
            self.close()
        except Exception:
            pass
