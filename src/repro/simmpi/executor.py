"""Pluggable rank-execution backends: run simulated ranks on real cores.

The engines are bulk-synchronous: between two fabric barriers every rank
runs the same compute phase (``relax_bucket``, ``process_inbox``,
``relax_block``, ...) against state no other rank can touch.  Those phases
are therefore embarrassingly parallel, and this module is the one place
that exploits it.  An engine builds its per-rank objects exactly as
before, wraps them in a :class:`RankTeam`, and from then on drives every
phase through :meth:`RankTeam.call` — the team decides *where* the rank
methods run:

* ``serial`` — in the calling thread, in rank order: today's behavior and
  the default.
* ``thread`` — on resident rank threads parked on a shared barrier pair
  (:mod:`repro.simmpi.parked`).  The hot phases are numpy kernels that
  release the GIL, so real cores overlap them.  Rank objects stay
  in-process; nothing is copied, and a phase costs two barrier crossings
  instead of per-rank pool submissions.
* ``process`` — on resident worker processes parked on a shared
  ``multiprocessing`` barrier.  Workers are forked from the parent *after*
  the rank objects exist, so the initial state transfers by copy-on-write
  instead of pickling; steady-state arguments and results (``Message``
  bundles, numpy arrays) move through ``multiprocessing.shared_memory``
  arenas without ever being pickled, and ``lazy=True`` results stay in the
  producing worker's arena until the destination rank reads them
  (zero-copy inter-rank transport).

Determinism guarantee: compute phases may interleave freely because ranks
share no mutable state (shared inputs — the graph, the owner array — are
read-only), and every barrier stays canonical: ``call`` returns results in
rank order, and the fabric's exchange/reduction order is fixed rank order.
All three backends therefore produce **bit-identical** distances, modeled
time, and comm bytes — the equivalence-matrix tests pin this, with faults
and the sanitizer on.

The team also measures parallel efficiency: every ``parallel=True`` phase
records per-rank wall durations, accumulated into a per-superstep
``critical_path`` (sum of per-phase maxima — the floor with infinite
cores) vs ``sum_of_ranks`` (total rank-seconds — the serial cost), which
the engines tag onto their superstep spans and RunReport surfaces.
"""

# repro-lint: disable-file=det-parallel-primitives

from __future__ import annotations

import math
import multiprocessing
import os
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs.profile import split_call_buckets
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simmpi.fabric import LazyConcat, Message, ShmMessage

__all__ = [
    "EXECUTOR_BACKENDS",
    "ProcessExecutor",
    "RankExecutor",
    "RankTeam",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkerError",
    "make_executor",
    "resolve_executor",
]

#: Backend names accepted by :func:`make_executor`, in documentation order.
EXECUTOR_BACKENDS = ("serial", "thread", "process")

# Shared-memory payload layout: array offsets are aligned so any dtype can
# be mapped in place on the worker side.
_ALIGN = 16
_MIN_ARENA = 1 << 20


class WorkerError(RuntimeError):
    """A rank method raised inside a process-backend worker.

    The original traceback is embedded in the message; the exception type
    itself cannot cross the process boundary without pickling arbitrary
    user state, which the transport layer never does.
    """


# -- pickle-free payload transport (process backend) ------------------------
#
# Arguments and results are mostly numpy arrays and Message bundles.  The
# encoder walks a value, parks every array in a shared-memory arena, and
# returns a small metadata tree (offsets + dtypes + shapes) that *is*
# cheap to send over the control pipe.  Scalars and other plain leaves ride
# along in the metadata.  The decoder maps each array straight out of the
# arena.  Nothing array-shaped is ever pickled.


class _PayloadWriter:
    """Collects arrays during encoding; writes them into a buffer at once."""

    __slots__ = ("arrays", "total")

    def __init__(self) -> None:
        self.arrays: list[tuple[np.ndarray, int]] = []
        self.total = 0

    def reserve(self, array: np.ndarray) -> int:
        offset = -(-self.total // _ALIGN) * _ALIGN
        self.arrays.append((array, offset))
        self.total = offset + array.nbytes
        return offset

    def write_into(self, buf) -> None:
        for array, offset in self.arrays:
            if array.nbytes == 0:
                continue
            dst = np.frombuffer(buf, dtype=np.uint8, count=array.nbytes, offset=offset)
            dst[:] = array.reshape(-1).view(np.uint8)


def _encode(obj: Any, writer: _PayloadWriter):
    if isinstance(obj, np.ndarray):
        a = np.ascontiguousarray(obj)
        return ("a", writer.reserve(a), a.dtype.str, a.shape)
    if isinstance(obj, Message):
        # Message fields are contiguous by construction; the wire header
        # (field names + dtypes) is cached on the message, so fan-out and
        # retransmission re-encodes skip the per-field walk.
        schema = obj.wire_schema()
        if len(obj) == 0:
            # Zero-length fast path: an empty bundle has no payload bytes,
            # so it needs no arena reservation — just the header.
            return ("m0", schema)
        fields = obj.fields
        return (
            "m",
            [(k, writer.reserve(fields[k]), dt, fields[k].shape) for k, dt in schema],
        )
    if isinstance(obj, ShmMessage):
        # Already parked in a worker-owned arena: ship the handle, not the
        # bytes.  The destination attaches the arena by name and copies the
        # fields out exactly once.
        return ("sm", obj.arena_name, obj.refs)
    if isinstance(obj, LazyConcat):
        return ("sc", [_encode(p, writer) for p in obj.pieces])
    if isinstance(obj, tuple):
        return ("t", [_encode(x, writer) for x in obj])
    if isinstance(obj, list):
        return ("l", [_encode(x, writer) for x in obj])
    if isinstance(obj, dict):
        return ("d", [(k, _encode(v, writer)) for k, v in obj.items()])
    return ("p", obj)


def _decode_array(buf, offset: int, dtype_str: str, shape) -> np.ndarray:
    dtype = np.dtype(dtype_str)
    count = math.prod(shape)
    if count == 0:
        return np.empty(shape, dtype=dtype)
    return (
        np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
        .reshape(shape)
        .copy()
    )


def _arena_fields(
    arena_name: str, refs, attach: Callable[[str], Any], copy: bool
) -> dict[str, np.ndarray]:
    """Field views (or owned copies) of an ``("sm", ...)`` ref tuple."""
    buf = attach(arena_name)
    out: dict[str, np.ndarray] = {}
    for k, off, dt, n in refs:
        dtype = np.dtype(dt)
        if n == 0:
            out[k] = np.empty(0, dtype=dtype)
        else:
            view = np.frombuffer(buf, dtype=dtype, count=n, offset=off)
            out[k] = view.copy() if copy else view
    return out


def _decode(meta, buf, attach: Callable[[str], Any] | None = None) -> Any:
    tag = meta[0]
    if tag == "a":
        return _decode_array(buf, meta[1], meta[2], meta[3])
    if tag == "m":
        return Message(
            **{k: _decode_array(buf, off, dt, shape) for k, off, dt, shape in meta[1]}
        )
    if tag == "m0":
        return Message(**{k: np.empty(0, dtype=np.dtype(dt)) for k, dt in meta[1]})
    if tag == "t":
        return tuple(_decode(m, buf, attach) for m in meta[1])
    if tag == "l":
        return [_decode(m, buf, attach) for m in meta[1]]
    if tag == "d":
        return {k: _decode(m, buf, attach) for k, m in meta[1]}
    if tag == "sm":
        if attach is None:
            raise RuntimeError(
                "lazy shared-memory message decoded outside the process "
                "backend (no arena attach function)"
            )
        return Message(**_arena_fields(meta[1], meta[2], attach, copy=True))
    if tag == "sc":
        if attach is None:
            raise RuntimeError(
                "lazy shared-memory message decoded outside the process "
                "backend (no arena attach function)"
            )
        # One copy total per field: pieces decode to arena *views*, and the
        # concatenate allocates the owned destination array.
        parts = []
        for m in meta[1]:
            if m[0] == "sm":
                parts.append(_arena_fields(m[1], m[2], attach, copy=False))
            else:
                parts.append(_decode(m, buf, attach).fields)
        return Message(
            **{k: np.concatenate([p[k] for p in parts]) for k in parts[0]}
        )
    return meta[1]


# -- teams ------------------------------------------------------------------


class RankTeam:
    """Drives one engine run's rank objects through an execution backend.

    ``call(method, per_rank=None, common=(), parallel=False)`` invokes
    ``getattr(rank, method)(*per_rank[i], *common)`` on every rank and
    returns the results **in rank order** (the determinism anchor).
    ``parallel=True`` marks a compute phase: it may run on real cores and
    its per-rank wall durations feed the critical-path accounting;
    ``parallel=False`` is for cheap control reads that stay sequential.

    ``lazy=True`` marks a call whose results are outbox ``Message``
    bundles that the fabric will route straight into the *next* call
    (flush-type phases).  Backends with an inter-process transport may
    then return :class:`~repro.simmpi.fabric.ShmMessage` handles instead
    of materialized bundles — payload bytes stay in the producing
    worker's arena until the destination rank reads them.  In-process
    backends ignore the flag; results are bit-identical either way.
    """

    backend = "?"
    num_workers = 1
    #: The team's :class:`~repro.simmpi.racecheck.RaceChecker` when the
    #: run was started with ``racecheck=True``; ``None`` otherwise.  The
    #: driver reads it to attach the audit report to the run's meta.
    racecheck = None

    def __init__(self, num_ranks: int, tracer: Tracer | None) -> None:
        self.num_ranks = num_ranks
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._critical_path = 0.0
        self._sum_of_ranks = 0.0

    def _account(
        self,
        method: str,
        durations: Sequence[float],
        starts: Sequence[float] | None = None,
    ) -> None:
        self._critical_path += max(durations)
        self._sum_of_ranks += sum(durations)
        if self.tracer.enabled:
            # Emitted from the driver thread after the gather — the tracer
            # is not thread-safe and workers must never touch it.  ``start``
            # and ``end`` are absolute monotonic timestamps (comparable
            # across forked workers); ``wait`` is this rank's barrier skew:
            # how long it idled until the phase's slowest task finished.
            phase_end = (
                max(s + d for s, d in zip(starts, durations)) if starts else 0.0
            )
            for rank, seconds in enumerate(durations):
                extra = {}
                if starts:
                    extra = {
                        "start": starts[rank],
                        "end": starts[rank] + seconds,
                        "wait": max(0.0, phase_end - (starts[rank] + seconds)),
                    }
                self.tracer.event(
                    "rank_task",
                    cat="executor",
                    method=method,
                    rank=rank,
                    seconds=seconds,
                    **extra,
                )

    def _profile_call(
        self,
        method: str,
        parallel: bool,
        t_begin: float,
        t_dispatched: float,
        t_end: float,
        starts: Sequence[float] | None,
        durations: Sequence[float] | None,
        ser_out: float = 0.0,
        ser_in: float = 0.0,
        spills: int = 0,
        transport_in: float = 0.0,
    ) -> None:
        """Emit one ``phase_call`` attribution event (tracer-on only)."""
        wall = t_end - t_begin
        buckets = split_call_buckets(
            wall,
            dispatch_window=t_dispatched - t_begin,
            starts=starts,
            durations=durations,
            workers=self.num_workers,
            ser_out=ser_out,
            ser_in=ser_in,
            transport_in=transport_in,
            parallel=parallel,
        )
        self.tracer.event(
            "phase_call",
            cat="executor",
            method=method,
            parallel=parallel,
            backend=self.backend,
            workers=self.num_workers,
            ranks=self.num_ranks,
            wall_s=wall,
            spills=spills,
            **{f"{name}_s": seconds for name, seconds in buckets.items()},
        )

    def take_step_timing(self) -> tuple[float, float]:
        """Return and reset (critical_path, sum_of_ranks) wall seconds.

        ``critical_path`` sums each parallel phase's slowest rank — the
        superstep's lower bound with unlimited cores; ``sum_of_ranks`` sums
        every rank's duration — its serial cost.  Their ratio is the
        superstep's available parallelism.
        """
        timing = (self._critical_path, self._sum_of_ranks)
        self._critical_path = 0.0
        self._sum_of_ranks = 0.0
        return timing

    def call(
        self,
        method: str,
        per_rank: Sequence[tuple] | None = None,
        common: tuple = (),
        parallel: bool = False,
        lazy: bool = False,
    ) -> list:
        raise NotImplementedError

    def call_one(self, rank: int, method: str, *args) -> Any:
        """Invoke ``method`` on a single rank (control plane, untimed)."""
        raise NotImplementedError

    def set_transport_lazy(self, enabled: bool) -> None:
        """Allow or forbid lazy shared-memory results for ``lazy=True`` calls.

        The driver forbids them when a consumer outside the rank methods
        must read payload bytes between calls (the fabric sanitizer audits
        every inbound piece).  Backends without an inter-process transport
        have nothing to switch; the base implementation is a no-op.
        """

    def close(self) -> None:
        """Release the team's workers; the team is unusable afterwards."""


class SerialTeam(RankTeam):
    """All rank methods run inline in the calling thread, in rank order."""

    backend = "serial"

    def __init__(self, ranks: Sequence, tracer: Tracer | None = None) -> None:
        super().__init__(len(ranks), tracer)
        self.ranks = list(ranks)

    def call(self, method, per_rank=None, common=(), parallel=False, lazy=False):
        profiling = self.tracer.enabled
        timed = parallel or profiling
        t_begin = time.perf_counter() if profiling else 0.0
        results = []
        starts = [] if timed else None
        durations = [] if timed else None
        for i, rank in enumerate(self.ranks):
            args = (tuple(per_rank[i]) + common) if per_rank is not None else common
            if timed:
                t0 = time.perf_counter()
                results.append(getattr(rank, method)(*args))
                starts.append(t0)
                durations.append(time.perf_counter() - t0)
            else:
                results.append(getattr(rank, method)(*args))
        if parallel:
            self._account(method, durations, starts)
        if profiling:
            self._profile_call(
                method, parallel, t_begin, t_begin, time.perf_counter(),
                starts, durations,
            )
        return results

    def call_one(self, rank, method, *args):
        return getattr(self.ranks[rank], method)(*args)


# -- executors --------------------------------------------------------------


class RankExecutor:
    """Factory for :class:`RankTeam` instances; owns any persistent pool.

    One executor can serve many sequential runs (the harness reuses one
    across all benchmark roots); each run builds one team from its freshly
    constructed rank objects.  ``close()`` releases pooled resources.
    """

    name = "?"

    def team(
        self,
        ranks: Sequence,
        tracer: Tracer | None = None,
        racecheck: bool = False,
    ) -> RankTeam:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (idempotent)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class SerialExecutor(RankExecutor):
    """The default backend: everything runs inline, exactly as before."""

    name = "serial"

    def __init__(self, workers: int | None = None) -> None:
        # ``workers`` is accepted for CLI uniformity; one thread is all
        # there is.
        self.workers = 1

    def team(self, ranks, tracer=None, racecheck=False):
        team = SerialTeam(ranks, tracer)
        if racecheck:
            # No concurrency to check, but attach a checker anyway so
            # racecheck runs report uniformly across backends.
            from repro.simmpi.racecheck import RaceChecker

            team.racecheck = RaceChecker(team.backend, team.tracer)
        return team


class ThreadExecutor(RankExecutor):
    """Resident parked rank threads; each team owns its thread crew.

    Threads are spawned per team (parked on a barrier pair for the team's
    whole run) rather than pooled across teams — the crew holds direct
    references to the team's rank objects, so it cannot outlive them.
    ``_pool`` remains for backwards compatibility and is always ``None``.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self._pool = None

    def team(self, ranks, tracer=None, racecheck=False):
        from repro.simmpi.parked import ParkedThreadTeam

        return ParkedThreadTeam(ranks, self.workers, tracer, racecheck=racecheck)

    def close(self):
        self._pool = None


class ProcessExecutor(RankExecutor):
    """Fork-based parked worker processes with shared-memory transport.

    Workers belong to the team (they must be forked after the rank objects
    exist to inherit them copy-on-write), so this executor holds only the
    configuration; the fork-availability check happens here, once, instead
    of failing mid-run.
    """

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the process executor needs the fork start method (POSIX); "
                "use executor='thread' on this platform"
            )
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")

    def team(self, ranks, tracer=None, racecheck=False):
        from repro.simmpi.parked import ParkedProcessTeam

        return ParkedProcessTeam(ranks, self.workers, tracer, racecheck=racecheck)


_FACTORY = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}
assert tuple(_FACTORY) == EXECUTOR_BACKENDS


def make_executor(
    spec: str | RankExecutor = "serial", workers: int | None = None
) -> RankExecutor:
    """Build an executor from a backend name, or pass one through.

    ``workers`` sizes the pool (default: the host's CPU count); it cannot
    be combined with an already-constructed executor instance.
    """
    if isinstance(spec, RankExecutor):
        if workers is not None:
            raise ValueError(
                "workers= cannot be combined with an executor instance; "
                "size the executor when constructing it"
            )
        return spec
    try:
        factory = _FACTORY[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown executor backend {spec!r}; "
            f"options: {', '.join(EXECUTOR_BACKENDS)}"
        ) from None
    return factory(workers=workers)


def resolve_executor(
    spec: str | RankExecutor | None, workers: int | None = None
) -> tuple[RankExecutor, bool]:
    """Resolve an engine's ``executor=`` argument to ``(executor, owns)``.

    ``owns`` tells the caller whether it created the executor (a string
    spec) and must close it, or borrowed one (an instance, or the serial
    default) whose lifetime belongs elsewhere.
    """
    if spec is None:
        if workers is not None:
            raise ValueError(
                "workers= requires an executor backend "
                "(executor='thread' or 'process')"
            )
        return SerialExecutor(), False
    if isinstance(spec, RankExecutor):
        return make_executor(spec, workers), False
    return make_executor(spec, workers), True
