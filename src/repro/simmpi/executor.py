"""Pluggable rank-execution backends: run simulated ranks on real cores.

The engines are bulk-synchronous: between two fabric barriers every rank
runs the same compute phase (``relax_bucket``, ``process_inbox``,
``relax_block``, ...) against state no other rank can touch.  Those phases
are therefore embarrassingly parallel, and this module is the one place
that exploits it.  An engine builds its per-rank objects exactly as
before, wraps them in a :class:`RankTeam`, and from then on drives every
phase through :meth:`RankTeam.call` — the team decides *where* the rank
methods run:

* ``serial`` — in the calling thread, in rank order: today's behavior and
  the default.
* ``thread`` — on a persistent :class:`~concurrent.futures.ThreadPoolExecutor`.
  The hot phases are numpy kernels that release the GIL, so real cores
  overlap them.  Rank objects stay in-process; nothing is copied.
* ``process`` — on persistent worker processes.  Workers are forked from
  the parent *after* the rank objects exist, so the initial state transfers
  by copy-on-write instead of pickling; steady-state arguments and results
  (``Message`` bundles, numpy arrays) move through
  ``multiprocessing.shared_memory`` arenas without ever being pickled.

Determinism guarantee: compute phases may interleave freely because ranks
share no mutable state (shared inputs — the graph, the owner array — are
read-only), and every barrier stays canonical: ``call`` returns results in
rank order, and the fabric's exchange/reduction order is fixed rank order.
All three backends therefore produce **bit-identical** distances, modeled
time, and comm bytes — the equivalence-matrix tests pin this, with faults
and the sanitizer on.

The team also measures parallel efficiency: every ``parallel=True`` phase
records per-rank wall durations, accumulated into a per-superstep
``critical_path`` (sum of per-phase maxima — the floor with infinite
cores) vs ``sum_of_ranks`` (total rank-seconds — the serial cost), which
the engines tag onto their superstep spans and RunReport surfaces.
"""

# repro-lint: disable-file=det-parallel-primitives

from __future__ import annotations

import math
import mmap
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Any, Sequence

import numpy as np

from repro.obs.profile import split_call_buckets
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simmpi.fabric import Message

__all__ = [
    "EXECUTOR_BACKENDS",
    "ProcessExecutor",
    "RankExecutor",
    "RankTeam",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkerError",
    "make_executor",
    "resolve_executor",
]

#: Backend names accepted by :func:`make_executor`, in documentation order.
EXECUTOR_BACKENDS = ("serial", "thread", "process")

# Shared-memory payload layout: array offsets are aligned so any dtype can
# be mapped in place on the worker side.
_ALIGN = 16
_MIN_ARENA = 1 << 20


class WorkerError(RuntimeError):
    """A rank method raised inside a process-backend worker.

    The original traceback is embedded in the message; the exception type
    itself cannot cross the process boundary without pickling arbitrary
    user state, which the transport layer never does.
    """


# -- pickle-free payload transport (process backend) ------------------------
#
# Arguments and results are mostly numpy arrays and Message bundles.  The
# encoder walks a value, parks every array in a shared-memory arena, and
# returns a small metadata tree (offsets + dtypes + shapes) that *is*
# cheap to send over the control pipe.  Scalars and other plain leaves ride
# along in the metadata.  The decoder maps each array straight out of the
# arena.  Nothing array-shaped is ever pickled.


class _PayloadWriter:
    """Collects arrays during encoding; writes them into a buffer at once."""

    __slots__ = ("arrays", "total")

    def __init__(self) -> None:
        self.arrays: list[tuple[np.ndarray, int]] = []
        self.total = 0

    def reserve(self, array: np.ndarray) -> int:
        offset = -(-self.total // _ALIGN) * _ALIGN
        self.arrays.append((array, offset))
        self.total = offset + array.nbytes
        return offset

    def write_into(self, buf) -> None:
        for array, offset in self.arrays:
            if array.nbytes == 0:
                continue
            dst = np.frombuffer(buf, dtype=np.uint8, count=array.nbytes, offset=offset)
            dst[:] = array.reshape(-1).view(np.uint8)


def _encode(obj: Any, writer: _PayloadWriter):
    if isinstance(obj, np.ndarray):
        a = np.ascontiguousarray(obj)
        return ("a", writer.reserve(a), a.dtype.str, a.shape)
    if isinstance(obj, Message):
        # Message fields are contiguous by construction.
        return (
            "m",
            [(k, writer.reserve(v), v.dtype.str, v.shape) for k, v in obj.fields.items()],
        )
    if isinstance(obj, tuple):
        return ("t", [_encode(x, writer) for x in obj])
    if isinstance(obj, list):
        return ("l", [_encode(x, writer) for x in obj])
    if isinstance(obj, dict):
        return ("d", [(k, _encode(v, writer)) for k, v in obj.items()])
    return ("p", obj)


def _decode_array(buf, offset: int, dtype_str: str, shape) -> np.ndarray:
    dtype = np.dtype(dtype_str)
    count = math.prod(shape)
    if count == 0:
        return np.empty(shape, dtype=dtype)
    return (
        np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
        .reshape(shape)
        .copy()
    )


def _decode(meta, buf) -> Any:
    tag = meta[0]
    if tag == "a":
        return _decode_array(buf, meta[1], meta[2], meta[3])
    if tag == "m":
        return Message(
            **{k: _decode_array(buf, off, dt, shape) for k, off, dt, shape in meta[1]}
        )
    if tag == "t":
        return tuple(_decode(m, buf) for m in meta[1])
    if tag == "l":
        return [_decode(m, buf) for m in meta[1]]
    if tag == "d":
        return {k: _decode(m, buf) for k, m in meta[1]}
    return meta[1]


# -- teams ------------------------------------------------------------------


class RankTeam:
    """Drives one engine run's rank objects through an execution backend.

    ``call(method, per_rank=None, common=(), parallel=False)`` invokes
    ``getattr(rank, method)(*per_rank[i], *common)`` on every rank and
    returns the results **in rank order** (the determinism anchor).
    ``parallel=True`` marks a compute phase: it may run on real cores and
    its per-rank wall durations feed the critical-path accounting;
    ``parallel=False`` is for cheap control reads that stay sequential.
    """

    backend = "?"
    num_workers = 1

    def __init__(self, num_ranks: int, tracer: Tracer | None) -> None:
        self.num_ranks = num_ranks
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._critical_path = 0.0
        self._sum_of_ranks = 0.0

    def _account(
        self,
        method: str,
        durations: Sequence[float],
        starts: Sequence[float] | None = None,
    ) -> None:
        self._critical_path += max(durations)
        self._sum_of_ranks += sum(durations)
        if self.tracer.enabled:
            # Emitted from the driver thread after the gather — the tracer
            # is not thread-safe and workers must never touch it.  ``start``
            # and ``end`` are absolute monotonic timestamps (comparable
            # across forked workers); ``wait`` is this rank's barrier skew:
            # how long it idled until the phase's slowest task finished.
            phase_end = (
                max(s + d for s, d in zip(starts, durations)) if starts else 0.0
            )
            for rank, seconds in enumerate(durations):
                extra = {}
                if starts:
                    extra = {
                        "start": starts[rank],
                        "end": starts[rank] + seconds,
                        "wait": max(0.0, phase_end - (starts[rank] + seconds)),
                    }
                self.tracer.event(
                    "rank_task",
                    cat="executor",
                    method=method,
                    rank=rank,
                    seconds=seconds,
                    **extra,
                )

    def _profile_call(
        self,
        method: str,
        parallel: bool,
        t_begin: float,
        t_dispatched: float,
        t_end: float,
        starts: Sequence[float] | None,
        durations: Sequence[float] | None,
        ser_out: float = 0.0,
        ser_in: float = 0.0,
        spills: int = 0,
    ) -> None:
        """Emit one ``phase_call`` attribution event (tracer-on only)."""
        wall = t_end - t_begin
        buckets = split_call_buckets(
            wall,
            dispatch_window=t_dispatched - t_begin,
            starts=starts,
            durations=durations,
            workers=self.num_workers,
            ser_out=ser_out,
            ser_in=ser_in,
            parallel=parallel,
        )
        self.tracer.event(
            "phase_call",
            cat="executor",
            method=method,
            parallel=parallel,
            backend=self.backend,
            workers=self.num_workers,
            ranks=self.num_ranks,
            wall_s=wall,
            spills=spills,
            **{f"{name}_s": seconds for name, seconds in buckets.items()},
        )

    def take_step_timing(self) -> tuple[float, float]:
        """Return and reset (critical_path, sum_of_ranks) wall seconds.

        ``critical_path`` sums each parallel phase's slowest rank — the
        superstep's lower bound with unlimited cores; ``sum_of_ranks`` sums
        every rank's duration — its serial cost.  Their ratio is the
        superstep's available parallelism.
        """
        timing = (self._critical_path, self._sum_of_ranks)
        self._critical_path = 0.0
        self._sum_of_ranks = 0.0
        return timing

    def call(
        self,
        method: str,
        per_rank: Sequence[tuple] | None = None,
        common: tuple = (),
        parallel: bool = False,
    ) -> list:
        raise NotImplementedError

    def call_one(self, rank: int, method: str, *args) -> Any:
        """Invoke ``method`` on a single rank (control plane, untimed)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the team's workers; the team is unusable afterwards."""


class SerialTeam(RankTeam):
    """All rank methods run inline in the calling thread, in rank order."""

    backend = "serial"

    def __init__(self, ranks: Sequence, tracer: Tracer | None = None) -> None:
        super().__init__(len(ranks), tracer)
        self.ranks = list(ranks)

    def call(self, method, per_rank=None, common=(), parallel=False):
        profiling = self.tracer.enabled
        timed = parallel or profiling
        t_begin = time.perf_counter() if profiling else 0.0
        results = []
        starts = [] if timed else None
        durations = [] if timed else None
        for i, rank in enumerate(self.ranks):
            args = (tuple(per_rank[i]) + common) if per_rank is not None else common
            if timed:
                t0 = time.perf_counter()
                results.append(getattr(rank, method)(*args))
                starts.append(t0)
                durations.append(time.perf_counter() - t0)
            else:
                results.append(getattr(rank, method)(*args))
        if parallel:
            self._account(method, durations, starts)
        if profiling:
            self._profile_call(
                method, parallel, t_begin, t_begin, time.perf_counter(),
                starts, durations,
            )
        return results

    def call_one(self, rank, method, *args):
        return getattr(self.ranks[rank], method)(*args)


def _timed_call(rank_obj, method: str, args: tuple):
    t0 = time.perf_counter()
    result = getattr(rank_obj, method)(*args)
    return result, t0, time.perf_counter() - t0


class ThreadTeam(RankTeam):
    """Parallel phases fan out over a shared ThreadPoolExecutor.

    The rank objects live in the driver process; the pool only overlaps
    their GIL-releasing numpy kernels.  Results are gathered in rank
    order, so any interleaving of the independent phases is invisible.
    """

    backend = "thread"

    def __init__(
        self, ranks: Sequence, pool: ThreadPoolExecutor, num_workers: int,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(len(ranks), tracer)
        self.ranks = list(ranks)
        self.num_workers = num_workers
        self._pool = pool

    def call(self, method, per_rank=None, common=(), parallel=False):
        if not parallel or self.num_ranks == 1:
            return SerialTeam.call(self, method, per_rank, common, parallel)
        profiling = self.tracer.enabled
        t_begin = time.perf_counter() if profiling else 0.0
        futures = [
            self._pool.submit(
                _timed_call,
                rank,
                method,
                (tuple(per_rank[i]) + common) if per_rank is not None else common,
            )
            for i, rank in enumerate(self.ranks)
        ]
        t_dispatched = time.perf_counter() if profiling else t_begin
        triples = [f.result() for f in futures]  # rank order; re-raises
        starts = [t0 for _, t0, _ in triples]
        durations = [d for _, _, d in triples]
        self._account(method, durations, starts)
        if profiling:
            self._profile_call(
                method, True, t_begin, t_dispatched, time.perf_counter(),
                starts, durations,
            )
        return [r for r, _, _ in triples]

    def call_one(self, rank, method, *args):
        return getattr(self.ranks[rank], method)(*args)


def _worker_main(conn, ranks: dict, profiled: bool = False) -> None:
    """Process-backend worker loop: decode, dispatch, encode, reply.

    Runs in a forked child that inherited ``ranks`` (its subset of the
    team's rank objects) by copy-on-write.  The parent's fabric, tracer
    and remaining ranks also exist in this address space but are never
    touched — all interaction is the control pipe plus the shared-memory
    arenas named in each command.

    ``profiled`` is latched at fork time from the team's tracer: when a
    real tracer is attached, each reply carries the worker's measured
    decode/encode seconds and per-task start timestamps (``perf_counter``
    is CLOCK_MONOTONIC on Linux, so worker and driver timestamps share a
    clock); when tracing is off only the existing per-task durations are
    taken, keeping the hot path identical to before.
    """
    attached: dict[str, tuple] = {}  # role -> (name, buffer, close)

    def attach(role: str, name: str):
        cached = attached.get(role)
        if cached is None or cached[0] != name:
            if cached is not None:
                cached[2]()
            # Map /dev/shm/<name> directly: in Python 3.11 a SharedMemory
            # *attach* also registers with a resource tracker, and a forked
            # worker cannot reuse the parent's tracker (not its child), so
            # it would spawn one of its own that later mistakes the
            # parent-owned segments for leaks.  A raw mmap has no tracker
            # side effects; the SharedMemory path is the non-/dev/shm
            # fallback.
            path = "/dev/shm/" + name.lstrip("/")
            try:
                fd = os.open(path, os.O_RDWR)
            except OSError:  # pragma: no cover - non-/dev/shm platforms
                segment = shared_memory.SharedMemory(name=name)
                attached[role] = (name, segment.buf, segment.close)
            else:
                try:
                    mapped = mmap.mmap(fd, os.fstat(fd).st_size)
                finally:
                    os.close(fd)
                attached[role] = (name, mapped, mapped.close)
        return attached[role][1]

    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "stop":
                break
            _, method, common_meta, per_metas, only, cmd_name, rep_name, rep_size = msg
            cmd_buf = attach("cmd", cmd_name) if cmd_name else b""
            dec_s = enc_s = 0.0
            try:
                td = time.perf_counter() if profiled else 0.0
                common = tuple(_decode(m, cmd_buf) for m in common_meta)
                if profiled:
                    dec_s += time.perf_counter() - td
                writer = _PayloadWriter()
                metas = []
                for rk in only if only is not None else sorted(ranks):
                    if per_metas is not None:
                        td = time.perf_counter() if profiled else 0.0
                        args = tuple(_decode(m, cmd_buf) for m in per_metas[rk])
                        if profiled:
                            dec_s += time.perf_counter() - td
                        args += common
                    else:
                        args = common
                    t0 = time.perf_counter()
                    result = getattr(ranks[rk], method)(*args)
                    duration = time.perf_counter() - t0
                    metas.append((rk, _encode(result, writer), duration, t0))
            except BaseException:
                conn.send(("err", method, traceback.format_exc()))
                continue
            te = time.perf_counter() if profiled else 0.0
            if writer.total <= rep_size:
                writer.write_into(attach("rep", rep_name))
                if profiled:
                    enc_s = time.perf_counter() - te
                conn.send(("res", metas, True, writer.total, dec_s, enc_s))
            else:
                # Reply outgrew the arena: spill this one over the pipe and
                # report the size so the parent grows the arena for next time.
                payload = bytearray(writer.total)
                writer.write_into(payload)
                if profiled:
                    enc_s = time.perf_counter() - te
                conn.send(("res", metas, False, writer.total, dec_s, enc_s))
                conn.send_bytes(bytes(payload))
    finally:
        for _, _, close in attached.values():
            close()
        conn.close()


class ProcessTeam(RankTeam):
    """Parallel phases run on forked worker processes.

    Rank ``i`` lives in worker ``i % num_workers`` — forked after the
    engine constructed (and seeded) the rank objects, so the initial state
    arrives by copy-on-write, never pickled.  Steady-state traffic is
    pickle-free too: array payloads travel through per-worker shared-memory
    arenas (parent-owned, grown on demand); only tiny metadata tuples cross
    the control pipes.  Workers persist for the team's whole run — one fork
    per run, thousands of supersteps served.
    """

    backend = "process"

    def __init__(
        self, ranks: Sequence, num_workers: int, tracer: Tracer | None = None
    ) -> None:
        super().__init__(len(ranks), tracer)
        ctx = multiprocessing.get_context("fork")
        workers = max(1, min(int(num_workers), len(ranks)))
        self.num_workers = workers
        self._rank_ids = [
            [i for i in range(len(ranks)) if i % workers == w] for w in range(workers)
        ]
        self._conns = []
        self._procs = []
        self._cmd: list[shared_memory.SharedMemory | None] = []
        self._rep: list[shared_memory.SharedMemory] = []
        self._closed = False
        for w in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    {i: ranks[i] for i in self._rank_ids[w]},
                    self.tracer.enabled,
                ),
                daemon=True,
                name=f"repro-rank-worker-{w}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
            self._cmd.append(None)
            self._rep.append(shared_memory.SharedMemory(create=True, size=_MIN_ARENA))

    @staticmethod
    def _grown(segment: shared_memory.SharedMemory | None, nbytes: int):
        """A segment of at least ``nbytes``; reuses or replaces ``segment``.

        POSIX keeps an unlinked segment alive while mapped, so the old one
        can be unlinked immediately — the worker drops its stale mapping
        when it sees the new name.
        """
        if segment is not None and segment.size >= nbytes:
            return segment
        if segment is not None:
            segment.close()
            segment.unlink()
        size = max(_MIN_ARENA, 1 << (nbytes - 1).bit_length())
        return shared_memory.SharedMemory(create=True, size=size)

    def _dispatch(self, method, per_rank, common, only_rank=None, profiling=False):
        """Send one command per (involved) worker; payloads via arenas.

        Returns ``(workers, ser_out)``: the workers commanded and the
        measured parent-side encode + arena-write seconds (0.0 unless
        ``profiling``).
        """
        workers = (
            range(self.num_workers) if only_rank is None
            else (only_rank % self.num_workers,)
        )
        ser_out = 0.0
        for w in workers:
            t0 = time.perf_counter() if profiling else 0.0
            writer = _PayloadWriter()
            common_meta = tuple(_encode(a, writer) for a in common)
            per_metas = None
            if per_rank is not None:
                ids = self._rank_ids[w] if only_rank is None else [only_rank]
                per_metas = {
                    i: tuple(_encode(a, writer) for a in per_rank[i]) for i in ids
                }
            cmd_name = None
            if writer.total:
                self._cmd[w] = self._grown(self._cmd[w], writer.total)
                writer.write_into(self._cmd[w].buf)
                cmd_name = self._cmd[w].name
            if profiling:
                ser_out += time.perf_counter() - t0
            only = None if only_rank is None else [only_rank]
            self._conns[w].send(
                ("call", method, common_meta, per_metas, only,
                 cmd_name, self._rep[w].name, self._rep[w].size)
            )
        return workers, ser_out

    def _gather(self, workers, results, durations, starts=None, profiling=False):
        """Collect one reply per worker; returns ``(ser_in, spills)``.

        ``ser_in`` sums worker-side decode/encode seconds (carried in each
        reply) plus the parent-side decode time when ``profiling``;
        ``spills`` counts replies that overflowed the arena onto the pipe.
        """
        failure = None
        ser_in = 0.0
        spills = 0
        for w in workers:
            msg = self._conns[w].recv()
            if msg[0] == "err":
                if failure is None:
                    failure = (w, msg[1], msg[2])
                continue
            _, metas, used_arena, total, worker_dec, worker_enc = msg
            ser_in += worker_dec + worker_enc
            if used_arena:
                buf = self._rep[w].buf
            else:
                spills += 1
                buf = self._conns[w].recv_bytes()
                self._rep[w] = self._grown(self._rep[w], total)
            t0 = time.perf_counter() if profiling else 0.0
            for rk, meta, duration, start in metas:
                results[rk] = _decode(meta, buf)
                durations[rk] = duration
                if starts is not None:
                    starts[rk] = start
            if profiling:
                ser_in += time.perf_counter() - t0
        if failure is not None:
            w, method, tb = failure
            raise WorkerError(
                f"rank worker {w} failed in {method!r}:\n{tb.rstrip()}"
            )
        return ser_in, spills

    def call(self, method, per_rank=None, common=(), parallel=False):
        if self._closed:
            raise RuntimeError("team is closed")
        profiling = self.tracer.enabled
        t_begin = time.perf_counter() if profiling else 0.0
        if per_rank is not None:
            per_rank = {i: tuple(args) for i, args in enumerate(per_rank)}
        workers, ser_out = self._dispatch(
            method, per_rank, tuple(common), profiling=profiling
        )
        t_dispatched = time.perf_counter() if profiling else t_begin
        results: list = [None] * self.num_ranks
        durations = [0.0] * self.num_ranks
        starts = [0.0] * self.num_ranks if profiling else None
        ser_in, spills = self._gather(workers, results, durations, starts, profiling)
        if parallel:
            self._account(method, durations, starts)
        if profiling:
            self._profile_call(
                method, parallel, t_begin, t_dispatched, time.perf_counter(),
                starts, durations, ser_out, ser_in, spills,
            )
        return results

    def call_one(self, rank, method, *args):
        if self._closed:
            raise RuntimeError("team is closed")
        profiling = self.tracer.enabled
        t_begin = time.perf_counter() if profiling else 0.0
        workers, ser_out = self._dispatch(
            method, {rank: args}, (), only_rank=rank, profiling=profiling
        )
        t_dispatched = time.perf_counter() if profiling else t_begin
        results: list = [None] * self.num_ranks
        durations = [0.0] * self.num_ranks
        starts = [0.0] * self.num_ranks if profiling else None
        ser_in, spills = self._gather(workers, results, durations, starts, profiling)
        if profiling:
            self._profile_call(
                method, False, t_begin, t_dispatched, time.perf_counter(),
                [starts[rank]], [durations[rank]], ser_out, ser_in, spills,
            )
        return results[rank]

    def close(self):
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung-worker backstop
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            conn.close()
        for segment in (*self._cmd, *self._rep):
            if segment is not None:
                try:
                    segment.close()
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def __del__(self):  # pragma: no cover - GC backstop for leaked teams
        try:
            self.close()
        except Exception:
            pass


# -- executors --------------------------------------------------------------


class RankExecutor:
    """Factory for :class:`RankTeam` instances; owns any persistent pool.

    One executor can serve many sequential runs (the harness reuses one
    across all benchmark roots); each run builds one team from its freshly
    constructed rank objects.  ``close()`` releases pooled resources.
    """

    name = "?"

    def team(self, ranks: Sequence, tracer: Tracer | None = None) -> RankTeam:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (idempotent)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class SerialExecutor(RankExecutor):
    """The default backend: everything runs inline, exactly as before."""

    name = "serial"

    def __init__(self, workers: int | None = None) -> None:
        # ``workers`` is accepted for CLI uniformity; one thread is all
        # there is.
        self.workers = 1

    def team(self, ranks, tracer=None):
        return SerialTeam(ranks, tracer)


class ThreadExecutor(RankExecutor):
    """A persistent thread pool shared by every team this executor builds."""

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self._pool: ThreadPoolExecutor | None = None

    def team(self, ranks, tracer=None):
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-rank"
            )
        return ThreadTeam(ranks, self._pool, self.workers, tracer)

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(RankExecutor):
    """Fork-based worker processes with shared-memory payload transport.

    Workers belong to the team (they must be forked after the rank objects
    exist to inherit them copy-on-write), so this executor holds only the
    configuration; the fork-availability check happens here, once, instead
    of failing mid-run.
    """

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the process executor needs the fork start method (POSIX); "
                "use executor='thread' on this platform"
            )
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")

    def team(self, ranks, tracer=None):
        return ProcessTeam(ranks, self.workers, tracer)


_FACTORY = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}
assert tuple(_FACTORY) == EXECUTOR_BACKENDS


def make_executor(
    spec: str | RankExecutor = "serial", workers: int | None = None
) -> RankExecutor:
    """Build an executor from a backend name, or pass one through.

    ``workers`` sizes the pool (default: the host's CPU count); it cannot
    be combined with an already-constructed executor instance.
    """
    if isinstance(spec, RankExecutor):
        if workers is not None:
            raise ValueError(
                "workers= cannot be combined with an executor instance; "
                "size the executor when constructing it"
            )
        return spec
    try:
        factory = _FACTORY[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown executor backend {spec!r}; "
            f"options: {', '.join(EXECUTOR_BACKENDS)}"
        ) from None
    return factory(workers=workers)


def resolve_executor(
    spec: str | RankExecutor | None, workers: int | None = None
) -> tuple[RankExecutor, bool]:
    """Resolve an engine's ``executor=`` argument to ``(executor, owns)``.

    ``owns`` tells the caller whether it created the executor (a string
    spec) and must close it, or borrowed one (an instance, or the serial
    default) whose lifetime belongs elsewhere.
    """
    if spec is None:
        if workers is not None:
            raise ValueError(
                "workers= requires an executor backend "
                "(executor='thread' or 'process')"
            )
        return SerialExecutor(), False
    if isinstance(spec, RankExecutor):
        return make_executor(spec, workers), False
    return make_executor(spec, workers), True
