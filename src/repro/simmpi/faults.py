"""Fault injection for the simulated fabric.

A full-machine run cannot assume a fault-free interconnect: at 10^5 nodes,
dropped messages, stalled ranks and slow links are routine.  This module
models them *deterministically*: a :class:`FaultSpec` describes the fault
environment (drop probability, delay/jitter, transient rank stalls, a
degraded-link model) and a :class:`FaultPlan` turns it into a seeded,
replayable schedule — every decision is a pure function of
``(seed, superstep, src, dst, attempt)``, so two runs with the same seed see
byte-identical fault schedules regardless of Python hashing or call order.

The fabric pairs the plan with an ack/retry protocol (timeout + exponential
backoff): a dropped message is retransmitted until delivered, so faults cost
*modeled time* and *retried bytes*, never correctness — the engines' answers
stay bit-identical to the fault-free run.

Counter-based randomness uses the splitmix64 finalizer: the key tuple is
folded into one 64-bit counter, finalized, and mapped to a uniform in
``[0, 1)``.  This is the standard trick (Random123 / Philox family) for
reproducible simulation randomness that is order-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "UndeliverableMessageError",
    "parse_faults",
]

# splitmix64 constants (Steele, Lea & Flood 2014).
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
# Distinct odd multipliers decorrelate the key components.
_K_STREAM = np.uint64(0xD1B54A32D192ED03)
_K_STEP = np.uint64(0x8CB92BA72F3D8DD7)
_K_SRC = np.uint64(0xABC98388FB8FAC03)
_K_DST = np.uint64(0x049838A2E0B4E249)
_K_ATTEMPT = np.uint64(0x9FB21C651E98DF25)

# Named sub-streams so e.g. the drop decision at (step, src, dst) never
# correlates with the delay sample at the same coordinates.
_STREAM_DROP = 1
_STREAM_DELAY = 2
_STREAM_STALL = 3
_STREAM_STALL_LEN = 4
_STREAM_LINK = 5

_TIME_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}


class UndeliverableMessageError(RuntimeError):
    """Raised when a message exhausts the retry budget (a dead link)."""


def _finalize(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer: avalanche a uint64 counter (wrapping mod 2^64)."""
    x = x + _GAMMA
    x = (x ^ (x >> np.uint64(30))) * _MIX1
    x = (x ^ (x >> np.uint64(27))) * _MIX2
    return x ^ (x >> np.uint64(31))


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of the fault environment.

    Attributes:
        drop: per-message, per-attempt drop probability in ``[0, 1)``.
        delay: mean extra latency injected per delayed message (s).
        delay_prob: fraction of messages that suffer the extra delay
            (1.0 once ``delay`` is set, i.e. every message jitters).
        jitter: amplitude of the uniform jitter added on top of ``delay``.
        stall: per-rank, per-superstep probability of a transient stall
            (an OS noise event, a slow CPE group, a busy NIC).
        stall_time: duration of one stall event (s).
        degraded: fraction of directed links running degraded.
        degraded_factor: bandwidth divisor on degraded links (4.0 means a
            degraded link moves bytes at 1/4 the healthy rate).
        seed: master seed of the deterministic schedule.
        timeout: ack timeout before the first retransmission (s); ``None``
            derives it from the machine's worst-case latency.
        max_retries: retry budget per message before the link is declared
            dead (:class:`UndeliverableMessageError`).
        backoff: exponential backoff multiplier between retries.
    """

    drop: float = 0.0
    delay: float = 0.0
    delay_prob: float = 1.0
    jitter: float = 0.0
    stall: float = 0.0
    stall_time: float = 100e-6
    degraded: float = 0.0
    degraded_factor: float = 4.0
    seed: int = 0
    timeout: float | None = None
    max_retries: int = 24
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.drop < 1.0):
            raise ValueError(f"drop probability must be in [0, 1); got {self.drop}")
        if not (0.0 <= self.delay_prob <= 1.0):
            raise ValueError(f"delay_prob must be in [0, 1]; got {self.delay_prob}")
        if not (0.0 <= self.stall <= 1.0):
            raise ValueError(f"stall probability must be in [0, 1]; got {self.stall}")
        if not (0.0 <= self.degraded <= 1.0):
            raise ValueError(f"degraded fraction must be in [0, 1]; got {self.degraded}")
        for attr in ("delay", "jitter", "stall_time"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        if self.degraded_factor < 1.0:
            raise ValueError("degraded_factor must be >= 1 (a divisor on bandwidth)")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")

    @property
    def active(self) -> bool:
        """Whether any fault class is enabled (False => zero-cost path)."""
        return (
            self.drop > 0.0
            or self.delay > 0.0
            or self.jitter > 0.0
            or self.stall > 0.0
            or self.degraded > 0.0
        )

    def with_seed(self, seed: int) -> "FaultSpec":
        return replace(self, seed=int(seed))

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a CLI fault spec: ``"drop=0.01,delay=2us,seed=7"``.

        Probabilities are plain floats; durations accept ``s``/``ms``/
        ``us``/``ns`` suffixes (bare numbers are seconds).
        """
        return parse_faults(text)

    def describe(self) -> dict[str, object]:
        """Compact non-default view for run metadata and reports."""
        default = FaultSpec()
        out: dict[str, object] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if value != getattr(default, name):
                out[name] = value
        out.setdefault("seed", self.seed)
        return out


def _parse_duration(key: str, raw: str) -> float:
    text = raw.strip().lower()
    for unit in ("ns", "us", "ms", "s"):
        if text.endswith(unit):
            try:
                return float(text[: -len(unit)]) * _TIME_UNITS[unit]
            except ValueError:
                break
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"bad duration for {key!r}: {raw!r} (expected e.g. '2us', '1.5ms', '0.001')"
        ) from None


def parse_faults(text: str) -> FaultSpec:
    """Build a :class:`FaultSpec` from a ``key=value,...`` string."""
    if not text or not text.strip():
        return FaultSpec()
    durations = {"delay", "jitter", "stall_time", "timeout"}
    ints = {"seed", "max_retries"}
    kwargs: dict[str, object] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"bad fault spec item {item!r} (expected key=value)")
        key, _, raw = item.partition("=")
        key = key.strip().replace("-", "_")
        if key not in FaultSpec.__dataclass_fields__:
            options = ", ".join(sorted(FaultSpec.__dataclass_fields__))
            raise ValueError(f"unknown fault spec key {key!r}; options: {options}")
        if key in durations:
            kwargs[key] = _parse_duration(key, raw)
        elif key in ints:
            kwargs[key] = int(raw)
        else:
            kwargs[key] = float(raw)
    return FaultSpec(**kwargs)


class FaultPlan:
    """A seeded, deterministic fault schedule over a fixed rank count.

    Every query is a pure function of the plan's seed and the integer
    coordinates it is given; the plan keeps no mutable state, so the fabric
    may interleave queries in any order without perturbing the schedule.
    """

    def __init__(self, spec: FaultSpec, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.spec = spec
        self.num_ranks = int(num_ranks)
        self._seed = np.uint64(np.int64(spec.seed).view(np.uint64))
        # The degraded-link map is a static property of the schedule: link
        # (src, dst) is degraded iff its link-stream uniform < degraded.
        if spec.degraded > 0.0:
            src = np.repeat(np.arange(num_ranks, dtype=np.uint64), num_ranks)
            dst = np.tile(np.arange(num_ranks, dtype=np.uint64), num_ranks)
            u = self._uniform(_STREAM_LINK, np.uint64(0), src, dst, np.uint64(0))
            slow = (u < spec.degraded).reshape(num_ranks, num_ranks)
            self.link_beta_factor = np.where(slow, spec.degraded_factor, 1.0)
        else:
            self.link_beta_factor = None

    @classmethod
    def coerce(
        cls, faults: "FaultPlan | FaultSpec | str | None", num_ranks: int
    ) -> "FaultPlan | None":
        """Accept a plan, spec, CLI string, or ``None`` (from any API layer)."""
        if faults is None:
            return None
        if isinstance(faults, cls):
            if faults.num_ranks != num_ranks:
                raise ValueError(
                    f"fault plan was built for {faults.num_ranks} ranks, "
                    f"fabric has {num_ranks}"
                )
            return faults if faults.spec.active else None
        if isinstance(faults, str):
            faults = parse_faults(faults)
        if not isinstance(faults, FaultSpec):
            raise TypeError(
                f"faults must be a FaultPlan, FaultSpec, spec string or None; "
                f"got {type(faults).__name__}"
            )
        return cls(faults, num_ranks) if faults.active else None

    # -- counter-based uniforms -------------------------------------------

    def _uniform(self, stream: int, step, src, dst, attempt) -> np.ndarray:
        """Deterministic uniforms in [0, 1) for the given coordinates.

        All arguments broadcast; the result has the broadcast shape.
        """
        with np.errstate(over="ignore"):  # uint64 wrap-around is the point
            x = (
                self._seed * _GAMMA
                ^ np.uint64(stream) * _K_STREAM
                ^ np.asarray(step, dtype=np.uint64) * _K_STEP
                ^ np.asarray(src, dtype=np.uint64) * _K_SRC
                ^ np.asarray(dst, dtype=np.uint64) * _K_DST
                ^ np.asarray(attempt, dtype=np.uint64) * _K_ATTEMPT
            )
            bits = _finalize(_finalize(x))
        return (bits >> np.uint64(11)).astype(np.float64) * (2.0**-53)

    # -- per-fault-class queries ------------------------------------------

    def drop_mask(
        self, step: int, src: np.ndarray, dst: np.ndarray, attempt: int
    ) -> np.ndarray:
        """True where message (src[i] -> dst[i]) is dropped on ``attempt``."""
        if self.spec.drop <= 0.0:
            return np.zeros(np.broadcast(src, dst).shape, dtype=bool)
        u = self._uniform(_STREAM_DROP, step, src, dst, attempt)
        return u < self.spec.drop

    def delay_of(self, step: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Extra seconds of latency injected on each message's first hop."""
        spec = self.spec
        if spec.delay <= 0.0 and spec.jitter <= 0.0:
            return np.zeros(np.broadcast(src, dst).shape, dtype=np.float64)
        u = self._uniform(_STREAM_DELAY, step, src, dst, 0)
        if spec.delay_prob < 1.0:
            hit = u < spec.delay_prob
            # Re-use the uniform *within* the hit band for the magnitude so
            # one stream decides both (still deterministic, no correlation
            # with drop/stall streams).
            frac = np.where(hit, u / max(spec.delay_prob, 1e-300), 0.0)
        else:
            hit = np.ones_like(u, dtype=bool)
            frac = u
        return np.where(hit, spec.delay + spec.jitter * frac, 0.0)

    def stall_times(self, step: int) -> np.ndarray:
        """Seconds each rank loses to a transient stall this superstep."""
        spec = self.spec
        ranks = np.arange(self.num_ranks, dtype=np.uint64)
        if spec.stall <= 0.0 or spec.stall_time <= 0.0:
            return np.zeros(self.num_ranks, dtype=np.float64)
        u = self._uniform(_STREAM_STALL, step, ranks, 0, 0)
        hit = u < spec.stall
        if not hit.any():
            return np.zeros(self.num_ranks, dtype=np.float64)
        # Stall length varies 0.5x-1.5x around stall_time, its own stream.
        v = self._uniform(_STREAM_STALL_LEN, step, ranks, 0, 0)
        return np.where(hit, spec.stall_time * (0.5 + v), 0.0)

    def beta_factor(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Bandwidth divisor for each (src, dst) link (1.0 = healthy)."""
        if self.link_beta_factor is None:
            return np.ones(np.broadcast(src, dst).shape, dtype=np.float64)
        return self.link_beta_factor[src, dst]

    # -- reproducibility ----------------------------------------------------

    def sample_schedule(self, num_steps: int, max_attempts: int = 3) -> dict[str, np.ndarray]:
        """Materialize the schedule over a step window (determinism tests).

        Returns dense arrays of every decision the plan would make for
        ``num_steps`` supersteps over all rank pairs: two plans built from
        the same spec must return byte-identical arrays.
        """
        p = self.num_ranks
        src = np.repeat(np.arange(p, dtype=np.uint64), p)
        dst = np.tile(np.arange(p, dtype=np.uint64), p)
        drops = np.stack(
            [
                np.stack(
                    [
                        self.drop_mask(s, src, dst, a).reshape(p, p)
                        for a in range(max_attempts)
                    ]
                )
                for s in range(num_steps)
            ]
        )
        delays = np.stack(
            [self.delay_of(s, src, dst).reshape(p, p) for s in range(num_steps)]
        )
        stalls = np.stack([self.stall_times(s) for s in range(num_steps)])
        beta = (
            self.link_beta_factor
            if self.link_beta_factor is not None
            else np.ones((p, p))
        )
        return {"drops": drops, "delays": delays, "stalls": stalls, "beta_factor": beta}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(ranks={self.num_ranks}, spec={self.spec.describe()})"
