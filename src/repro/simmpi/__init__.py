"""SimMPI — a deterministic, in-process simulated message-passing machine.

The paper's contribution runs on >40M cores; the calibration band for this
reproduction says that is infeasible in Python with real MPI.  SimMPI is the
substitution: ranks live in one process, messages are numpy buffers moved by
a :class:`~repro.simmpi.fabric.Fabric`, and a cost model charges *simulated
time* for computation and communication against a
:class:`~repro.simmpi.machine.MachineSpec` describing a Sunway-class system
(node throughput, hierarchical supernode network, per-tier latency and
bandwidth).

What is measured vs. modeled:

* **measured** — message bytes, message counts, synchronization rounds,
  per-rank work (edge relaxations, bucket operations), load balance: these
  come from the actual algorithm execution and would be identical on a real
  machine;
* **modeled** — the conversion of those measurements into seconds, via an
  alpha-beta (latency/bandwidth) model with topology tiers.
"""

from repro.simmpi.clock import SimClock
from repro.simmpi.executor import (
    EXECUTOR_BACKENDS,
    ProcessExecutor,
    RankExecutor,
    RankTeam,
    SerialExecutor,
    ThreadExecutor,
    WorkerError,
    make_executor,
    resolve_executor,
)
from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.faults import (
    FaultPlan,
    FaultSpec,
    UndeliverableMessageError,
    parse_faults,
)
from repro.simmpi.machine import (
    MachineSpec,
    laptop_machine,
    small_cluster,
    sunway_exascale,
)
from repro.simmpi.sanitizer import FabricSanitizer, SanitizerViolation
from repro.simmpi.topology import Topology
from repro.simmpi.trace import CommTrace

__all__ = [
    "CommTrace",
    "EXECUTOR_BACKENDS",
    "Fabric",
    "FabricSanitizer",
    "FaultPlan",
    "FaultSpec",
    "MachineSpec",
    "Message",
    "ProcessExecutor",
    "RankExecutor",
    "RankTeam",
    "SanitizerViolation",
    "SerialExecutor",
    "SimClock",
    "ThreadExecutor",
    "Topology",
    "UndeliverableMessageError",
    "WorkerError",
    "laptop_machine",
    "make_executor",
    "parse_faults",
    "resolve_executor",
    "small_cluster",
    "sunway_exascale",
]
