"""Communication trace: the measured (not modeled) side of a simulated run.

Bytes, message counts and synchronization rounds recorded here are exact
properties of the algorithm's execution; the evaluation figures that compare
optimizations (coalescing on/off, fusion on/off) read them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simmpi.topology import TIER_INTER, TIER_INTRA

__all__ = ["CommTrace"]


@dataclass
class CommTrace:
    """Aggregated traffic statistics of one distributed run."""

    num_ranks: int
    bytes_intra: int = 0
    bytes_inter: int = 0
    # Extra intra-supernode hops taken by hierarchical aggregation
    # (member <-> leader forwarding); zero under direct routing.
    bytes_forwarded: int = 0
    messages: int = 0
    supersteps: int = 0
    barriers: int = 0
    allreduces: int = 0
    # Resilience accounting (all zero on a fault-free fabric): bytes resent
    # after a drop, messages dropped at least once, retry rounds taken, and
    # rank-stall events absorbed into simulated time.
    bytes_retransmitted: int = 0
    messages_dropped: int = 0
    retries: int = 0
    stalls: int = 0
    # Per-rank totals for load-balance analysis; ``None`` until
    # ``__post_init__`` sizes them to ``num_ranks``.
    bytes_sent_per_rank: np.ndarray | None = None
    bytes_recv_per_rank: np.ndarray | None = None
    # Per-superstep totals: the traffic wavefront over the run's lifetime.
    step_bytes: list = field(default_factory=list)
    step_messages: list = field(default_factory=list)
    # Per-superstep retransmitted bytes, aligned with ``step_bytes`` (always
    # appended, zero on fault-free steps, so the columns line up).
    step_retry_bytes: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bytes_sent_per_rank is None:
            self.bytes_sent_per_rank = np.zeros(self.num_ranks, dtype=np.int64)
        if self.bytes_recv_per_rank is None:
            self.bytes_recv_per_rank = np.zeros(self.num_ranks, dtype=np.int64)

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_intra + self.bytes_inter)

    def record_exchange(
        self,
        bytes_matrix: np.ndarray,
        tier_matrix: np.ndarray,
        message_count: int,
    ) -> None:
        """Account one alltoallv: ``bytes_matrix[src, dst]`` bytes moved."""
        if bytes_matrix.shape != (self.num_ranks, self.num_ranks):
            raise ValueError("bytes matrix shape mismatch")
        self.bytes_intra += int(bytes_matrix[tier_matrix == TIER_INTRA].sum())
        self.bytes_inter += int(bytes_matrix[tier_matrix == TIER_INTER].sum())
        self.messages += int(message_count)
        self.supersteps += 1
        self.bytes_sent_per_rank += bytes_matrix.sum(axis=1).astype(np.int64)
        self.bytes_recv_per_rank += bytes_matrix.sum(axis=0).astype(np.int64)
        self.step_bytes.append(int(bytes_matrix.sum()))
        self.step_messages.append(int(message_count))
        self.step_retry_bytes.append(0)

    def record_retransmissions(
        self, retry_bytes: int, dropped: int, rounds: int
    ) -> None:
        """Account the retry traffic of the superstep recorded last."""
        if not self.step_retry_bytes:
            raise ValueError("no superstep recorded yet")
        self.bytes_retransmitted += int(retry_bytes)
        self.messages_dropped += int(dropped)
        self.retries += int(rounds)
        self.step_retry_bytes[-1] += int(retry_bytes)

    def comm_imbalance(self) -> float:
        """Max/mean of per-rank sent bytes (1.0 = perfectly balanced)."""
        mean = self.bytes_sent_per_rank.mean()
        if mean == 0:
            return 1.0
        return float(self.bytes_sent_per_rank.max() / mean)

    def summary(self) -> dict[str, float | int]:
        return {
            "ranks": self.num_ranks,
            "total_bytes": self.total_bytes,
            "bytes_intra": int(self.bytes_intra),
            "bytes_inter": int(self.bytes_inter),
            "bytes_forwarded": int(self.bytes_forwarded),
            "messages": int(self.messages),
            "supersteps": int(self.supersteps),
            "barriers": int(self.barriers),
            "allreduces": int(self.allreduces),
            "bytes_retransmitted": int(self.bytes_retransmitted),
            "messages_dropped": int(self.messages_dropped),
            "retries": int(self.retries),
            "stalls": int(self.stalls),
            "comm_imbalance": round(self.comm_imbalance(), 3),
        }
