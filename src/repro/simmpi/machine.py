"""Machine descriptions for the cost model.

A :class:`MachineSpec` is everything the simulator knows about the physical
system: how fast a node chews through edge relaxations, and what the network
charges for a message, by topology tier.  The numbers in
:func:`sunway_exascale` are order-of-magnitude public figures for the
New-Generation Sunway system (SW26010-Pro: 6 core groups x (1 MPE + 64
CPEs) = 390 cores/node, ~100k nodes, hierarchical supernode interconnect);
they set the *scale* of projected results, not a claim of calibration
against the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MachineSpec", "sunway_exascale", "small_cluster", "laptop_machine"]


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of the simulated machine.

    Rates are per *node* (one SimMPI rank == one node; intra-node
    parallelism is folded into the rates, matching how the paper's
    distributed algorithm sees the machine).

    Attributes:
        edge_rate: relaxations/s a node sustains (memory-bandwidth bound).
        bucket_rate: bucket-maintenance operations/s (insert/decrease/scan).
        memcpy_rate: bytes/s for local buffer packing/unpacking.
        alpha_intra: message latency within a supernode (s).
        alpha_inter: message latency across supernodes (s).
        beta_intra: inverse bandwidth within a supernode (s/byte).
        beta_inter: inverse bandwidth across supernodes (s/byte).
        barrier_alpha: per-hop latency of the global barrier/allreduce tree.
        nodes_per_supernode: topology grouping factor.
        max_nodes: hardware size cap (projection experiments use it).
        cores_per_node: descriptive only (reports, core-count headlines).
        mem_per_node: usable DRAM per node in bytes (feasibility model).
    """

    name: str
    edge_rate: float
    bucket_rate: float
    memcpy_rate: float
    alpha_intra: float
    alpha_inter: float
    beta_intra: float
    beta_inter: float
    barrier_alpha: float
    nodes_per_supernode: int
    max_nodes: int
    cores_per_node: int
    mem_per_node: float = 64e9
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        for attr in (
            "edge_rate",
            "bucket_rate",
            "memcpy_rate",
            "alpha_intra",
            "alpha_inter",
            "beta_intra",
            "beta_inter",
            "barrier_alpha",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.nodes_per_supernode < 1 or self.max_nodes < 1 or self.cores_per_node < 1:
            raise ValueError("topology counts must be >= 1")

    @property
    def total_cores(self) -> int:
        return self.max_nodes * self.cores_per_node

    def describe(self) -> dict[str, object]:
        """Row for the machine-configuration table (experiment T2)."""
        return {
            "machine": self.name,
            "nodes": self.max_nodes,
            "cores/node": self.cores_per_node,
            "total cores": self.total_cores,
            "edge rate/node (GTEPS)": self.edge_rate / 1e9,
            "intra-SN bandwidth (GB/s)": 1.0 / self.beta_intra / 1e9,
            "inter-SN bandwidth (GB/s)": 1.0 / self.beta_inter / 1e9,
            "intra-SN latency (us)": self.alpha_intra * 1e6,
            "inter-SN latency (us)": self.alpha_inter * 1e6,
            "nodes/supernode": self.nodes_per_supernode,
        }


def sunway_exascale() -> MachineSpec:
    """A Sunway-class exascale machine (the paper's deployment scale).

    107,520 nodes x 390 cores = ~41.9M cores.  Node edge rate assumes the
    relaxation loop is bound by ~24 bytes of random memory traffic per edge
    against ~300 GB/s of node memory bandwidth, discounted 4x for the
    random-access inefficiency of scale-free traversal.
    """
    return MachineSpec(
        name="sunway-exascale",
        edge_rate=3.0e9,
        bucket_rate=6.0e9,
        memcpy_rate=5.0e10,
        alpha_intra=1.5e-6,
        alpha_inter=3.5e-6,
        beta_intra=1.0 / 12.0e9,
        beta_inter=1.0 / 6.0e9,
        barrier_alpha=1.2e-6,
        nodes_per_supernode=256,
        max_nodes=107_520,
        cores_per_node=390,
        mem_per_node=96e9,
        notes="order-of-magnitude public figures for the New-Generation Sunway",
    )


def small_cluster(nodes: int = 64) -> MachineSpec:
    """A commodity InfiniBand cluster; used for mid-scale experiments."""
    return MachineSpec(
        name=f"cluster-{nodes}",
        edge_rate=1.0e9,
        bucket_rate=2.0e9,
        memcpy_rate=2.0e10,
        alpha_intra=1.0e-6,
        alpha_inter=2.0e-6,
        beta_intra=1.0 / 10.0e9,
        beta_inter=1.0 / 5.0e9,
        barrier_alpha=1.0e-6,
        nodes_per_supernode=16,
        max_nodes=nodes,
        cores_per_node=64,
        mem_per_node=256e9,
    )


def laptop_machine() -> MachineSpec:
    """A single shared-memory box pretending to be a few ranks (CI runs)."""
    return MachineSpec(
        name="laptop",
        edge_rate=2.0e8,
        bucket_rate=4.0e8,
        memcpy_rate=8.0e9,
        alpha_intra=5.0e-7,
        alpha_inter=5.0e-7,
        beta_intra=1.0 / 2.0e10,
        beta_inter=1.0 / 2.0e10,
        barrier_alpha=2.0e-7,
        nodes_per_supernode=64,
        max_nodes=64,
        cores_per_node=8,
        mem_per_node=16e9,
    )
