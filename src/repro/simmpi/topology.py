"""Rank-to-topology mapping.

One SimMPI rank corresponds to one node of the machine.  Nodes are grouped
into supernodes (the Sunway network hierarchy); the cost model charges the
intra-supernode tier for messages between nodes of the same group and the
inter-supernode tier otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi.machine import MachineSpec

__all__ = ["Topology", "TIER_LOCAL", "TIER_INTRA", "TIER_INTER"]

TIER_LOCAL = 0  # same rank: no network traversal
TIER_INTRA = 1  # same supernode
TIER_INTER = 2  # different supernodes


class Topology:
    """Placement of ``num_ranks`` ranks onto a machine's node hierarchy."""

    __slots__ = ("machine", "num_ranks", "supernode")

    def __init__(self, machine: MachineSpec, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if num_ranks > machine.max_nodes:
            raise ValueError(
                f"{num_ranks} ranks exceed machine capacity of {machine.max_nodes} nodes"
            )
        self.machine = machine
        self.num_ranks = int(num_ranks)
        self.supernode = (
            np.arange(self.num_ranks, dtype=np.int64) // machine.nodes_per_supernode
        )

    def tier_matrix(self) -> np.ndarray:
        """``(P, P)`` tier of the path between every rank pair."""
        same_sn = self.supernode[:, None] == self.supernode[None, :]
        tiers = np.where(same_sn, TIER_INTRA, TIER_INTER).astype(np.int8)
        np.fill_diagonal(tiers, TIER_LOCAL)
        return tiers

    def alpha_matrix(self) -> np.ndarray:
        """Per-pair message latency (s)."""
        m = self.machine
        lookup = np.array([0.0, m.alpha_intra, m.alpha_inter])
        return lookup[self.tier_matrix()]

    def beta_matrix(self) -> np.ndarray:
        """Per-pair inverse bandwidth (s/byte)."""
        m = self.machine
        lookup = np.array([0.0, m.beta_intra, m.beta_inter])
        return lookup[self.tier_matrix()]

    def barrier_cost(self) -> float:
        """Simulated cost of a global barrier: a latency tree over ranks."""
        if self.num_ranks == 1:
            return 0.0
        depth = int(np.ceil(np.log2(self.num_ranks)))
        return self.machine.barrier_alpha * depth

    def num_supernodes(self) -> int:
        return int(self.supernode[-1]) + 1
