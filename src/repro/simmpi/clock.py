"""The simulated clock.

Accumulates simulated seconds by named component (``compute``, ``comm``,
``sync``, ...).  Every distributed run produces a time breakdown — the data
behind the communication-breakdown figure (F5).
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["SimClock"]


class SimClock:
    """Named accumulators of simulated time."""

    __slots__ = ("_components",)

    def __init__(self) -> None:
        self._components: defaultdict[str, float] = defaultdict(float)

    def charge(self, component: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot charge negative time ({seconds}s to {component})")
        self._components[component] += seconds

    @property
    def total(self) -> float:
        return float(sum(self._components.values()))

    def component(self, name: str) -> float:
        return float(self._components.get(name, 0.0))

    def breakdown(self) -> dict[str, float]:
        return {k: float(v) for k, v in sorted(self._components.items())}

    def reset(self) -> None:
        self._components.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v:.3e}s" for k, v in self.breakdown().items())
        return f"SimClock({inner})"
