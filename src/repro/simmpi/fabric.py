"""The message fabric: moves numpy buffers between ranks and charges time.

The fabric is the single point through which all inter-rank data flows, so
it is also where measurement (bytes, messages, supersteps — exact) and
modeling (seconds — alpha-beta with topology tiers) happen.

A :class:`Message` is a struct-of-arrays bundle (e.g. ``vertex`` ids plus
tentative ``dist`` values); its wire size is the sum of its arrays' bytes.
This mirrors how the real codes pack update records into flat send buffers.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simmpi.clock import SimClock
from repro.simmpi.faults import FaultPlan, FaultSpec, UndeliverableMessageError
from repro.simmpi.machine import MachineSpec
from repro.simmpi.racecheck import ArenaClosedError
from repro.simmpi.sanitizer import FabricSanitizer
from repro.simmpi.topology import Topology
from repro.simmpi.trace import CommTrace

__all__ = ["Fabric", "LazyConcat", "Message", "ShmMessage"]


class Message:
    """An immutable bundle of equal-length named numpy arrays."""

    __slots__ = ("fields", "nbytes", "_wire")

    #: Real messages hold their arrays; the process backend's lazy handles
    #: (:class:`ShmMessage`, :class:`LazyConcat`) set this True instead.
    is_lazy = False

    def __init__(self, **fields: np.ndarray) -> None:
        if not fields:
            raise ValueError("a message needs at least one field")
        out: dict[str, np.ndarray] = {}
        length = -1
        nbytes = 0
        for k, v in fields.items():
            a = np.ascontiguousarray(v)
            if a.ndim != 1 or (length >= 0 and a.shape[0] != length):
                shapes = {k: np.asarray(v).shape for k, v in fields.items()}
                raise ValueError(f"message fields must be equal-length 1-D arrays, got {shapes}")
            length = a.shape[0]
            nbytes += a.nbytes
            out[k] = a
        self.fields = out
        # Fields never change after construction, so the wire size is fixed;
        # the cost model reads it once per hop and charge.
        self.nbytes = int(nbytes)
        self._wire = None

    def __getitem__(self, key: str) -> np.ndarray:
        return self.fields[key]

    def __len__(self) -> int:
        return next(iter(self.fields.values())).shape[0]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.fields)

    def wire_schema(self) -> tuple[tuple[str, str], ...]:
        """Cached ``(name, dtype.str)`` wire header for this bundle.

        Fields never change after construction, so the header is computed
        once and reused: fault-injected retransmissions and fan-out sends
        (the same Message object encoded for several destinations) skip the
        per-field dict walk on every re-encode.
        """
        ws = self._wire
        if ws is None:
            ws = self._wire = tuple((k, v.dtype.str) for k, v in self.fields.items())
        return ws

    @classmethod
    def concat(cls, messages: Iterable["Message"]) -> "Message | None":
        """Concatenate compatible messages; ``None`` for an empty iterable.

        Zero-length pieces are dropped before concatenating (an empty
        frontier contributes no wire bytes, so it should cost no copy and
        no downstream header either); if *every* piece is empty the first
        is aliased, preserving the schema.  If any surviving piece is a
        lazy shared-memory handle the result is a :class:`LazyConcat`
        handle — payload bytes stay in the owning workers' arenas until a
        destination rank materializes them.
        """
        msgs = [m for m in messages if m is not None]
        if not msgs:
            return None
        names = msgs[0].names
        for m in msgs[1:]:
            if m.names != names:
                raise ValueError(f"incompatible message schemas: {names} vs {m.names}")
        if len(msgs) > 1:
            nonempty = [m for m in msgs if len(m)]
            msgs = nonempty if nonempty else msgs[:1]
        if len(msgs) == 1:
            # Lone message: messages are immutable, so aliasing it is safe
            # and saves one full copy of every field (the common case for
            # sparse exchanges, where most ranks hear from one sender).
            return msgs[0]
        if any(m.is_lazy for m in msgs):
            return LazyConcat(msgs)
        return cls(**{k: np.concatenate([m[k] for m in msgs]) for k in names})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Message(n={len(self)}, fields={list(self.fields)})"


class ShmMessage:
    """Lazy handle to a :class:`Message` parked in a shared-memory arena.

    The process backend's zero-copy transport returns these instead of
    materialized bundles: the payload bytes stay where the owning worker
    wrote them (its out arena), and only this handle — arena name plus
    per-field ``(name, offset, dtype, length)`` refs — crosses the control
    plane.  The destination worker attaches the arena by name and copies
    the fields out exactly once; nothing is ever pickled.

    The handle is valid until the owning worker's *next-but-one* lazy
    reply (out arenas are double-buffered), which covers the engines'
    exchange-then-apply pattern.  ``fields`` materializes driver-side for
    debugging; steady-state consumers never call it.

    A team-minted handle carries its mint generation (``_team_ref``,
    ``_worker``, ``_gen``): closing the team detaches the handle from its
    arena, so a late ``fields`` raises :class:`ArenaClosedError` instead
    of reading an unlinked mapping, and under ``racecheck=True`` the team
    verifies the arena generation on every materialization.
    """

    __slots__ = (
        "arena_name", "refs", "nbytes", "_buf", "_fields",
        "_team_ref", "_worker", "_gen", "__weakref__",
    )

    is_lazy = True

    def __init__(self, arena_name: str, refs, buf) -> None:
        # refs: tuple of (field_name, offset, dtype_str, length)
        self.arena_name = arena_name
        self.refs = tuple(refs)
        self._buf = buf
        self._fields = None
        self._team_ref = None
        self._worker = 0
        self._gen = 0
        self.nbytes = int(
            sum(np.dtype(dt).itemsize * n for _, _, dt, n in self.refs)
        )

    def __len__(self) -> int:
        return self.refs[0][3]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(r[0] for r in self.refs)

    def check_live(self) -> None:
        """Raise unless this handle's arena bytes are still readable.

        Detachment (team closed) is always checked; generation staleness
        only when the owning team runs with ``racecheck=True``.
        """
        if self._fields is not None:
            return  # already materialized into owned arrays
        if self._buf is None:
            raise ArenaClosedError(
                f"lazy message handle (arena {self.arena_name!r}) used "
                f"after the owning team closed and released its arenas; "
                f"materialize .fields before close()"
            )
        team = self._team_ref() if self._team_ref is not None else None
        if team is not None:
            team._check_handle(self)

    @property
    def fields(self) -> dict[str, np.ndarray]:
        if self._fields is None:
            self.check_live()
            out = {}
            for name, off, dt, n in self.refs:
                dtype = np.dtype(dt)
                if n == 0:
                    out[name] = np.empty(0, dtype=dtype)
                else:
                    out[name] = np.frombuffer(
                        self._buf, dtype=dtype, count=n, offset=off
                    ).copy()
            self._fields = out
        return self._fields

    def __getitem__(self, key: str) -> np.ndarray:
        return self.fields[key]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShmMessage(n={len(self)}, arena={self.arena_name!r})"


class LazyConcat:
    """A concatenation of message pieces, at least one of them lazy.

    Produced by :meth:`Message.concat` during a fabric exchange when the
    inbound pieces are :class:`ShmMessage` handles.  The concatenation is
    deferred: the destination worker decodes each piece (attaching foreign
    arenas by name) and concatenates once, instead of the driver copying
    every payload out of shared memory only to copy it back in.
    """

    __slots__ = ("pieces", "nbytes", "_length", "_fields")

    is_lazy = True

    def __init__(self, pieces) -> None:
        self.pieces = tuple(pieces)
        self.nbytes = int(sum(p.nbytes for p in self.pieces))
        self._length = sum(len(p) for p in self.pieces)
        self._fields = None

    def __len__(self) -> int:
        return self._length

    @property
    def names(self) -> tuple[str, ...]:
        return self.pieces[0].names

    @property
    def fields(self) -> dict[str, np.ndarray]:
        if self._fields is None:
            self._fields = {
                k: np.concatenate([p.fields[k] for p in self.pieces])
                for k in self.names
            }
        return self._fields

    def __getitem__(self, key: str) -> np.ndarray:
        return self.fields[key]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LazyConcat(n={len(self)}, pieces={len(self.pieces)})"


class Fabric:
    """Bulk-synchronous communication between ``num_ranks`` simulated ranks.

    With ``hierarchical=True`` the cost model routes inter-supernode
    traffic through supernode leader ranks (gather -> leader exchange ->
    scatter), the aggregation a 10^5-rank machine needs to avoid per-step
    O(P) message fan-out.  Payload *delivery* is unchanged — only the
    modeled time and the forwarded-bytes accounting differ.

    ``faults`` (a :class:`~repro.simmpi.faults.FaultPlan`, a
    :class:`~repro.simmpi.faults.FaultSpec`, a CLI spec string, or ``None``)
    subjects every communication phase to the deterministic fault schedule:
    dropped messages are retransmitted under an ack/retry protocol with
    timeout and exponential backoff, delayed messages and stalled ranks
    charge extra simulated time, and degraded links move bytes at reduced
    bandwidth.  Delivery is still guaranteed (or
    :class:`UndeliverableMessageError` after ``max_retries``), so the
    engines' answers are bit-identical with faults on or off; only the
    modeled time, the ``faults`` clock component and the retransmission
    accounting change.  ``faults=None`` costs one attribute check.

    ``sanitize=True`` attaches a
    :class:`~repro.simmpi.sanitizer.FabricSanitizer` that audits every
    collective for schema matching, message conservation, NaN reductions
    and no-progress livelock, raising
    :class:`~repro.simmpi.sanitizer.SanitizerViolation` on the first
    broken invariant and mirroring it as a ``cat="sanitizer"`` tracer
    event.  ``sanitize=False`` costs one attribute check per collective.
    """

    def __init__(
        self,
        machine: MachineSpec,
        num_ranks: int,
        hierarchical: bool = False,
        tracer: Tracer | None = None,
        faults: FaultPlan | FaultSpec | str | None = None,
        sanitize: bool = False,
    ) -> None:
        self.machine = machine
        self.topology = Topology(machine, num_ranks)
        self.num_ranks = num_ranks
        self.hierarchical = bool(hierarchical)
        self.clock = SimClock()
        self.trace = CommTrace(num_ranks)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Simulated timestamps in telemetry come from this fabric's clock.
        self.tracer.use_sim_clock(self.clock)
        self._alpha = self.topology.alpha_matrix()
        self._beta = self.topology.beta_matrix()
        self._tiers = self.topology.tier_matrix()
        # Per-rank accumulated work units by component, for load-balance reports.
        self.work_per_rank: dict[str, np.ndarray] = {}
        # Fault injection: None (the free path) or a deterministic plan.
        self.faults = FaultPlan.coerce(faults, num_ranks)
        if self.faults is not None:
            spec = self.faults.spec
            self._fault_timeout = (
                spec.timeout
                if spec.timeout is not None
                else 4.0 * max(machine.alpha_inter, machine.alpha_intra)
            )
            if self.faults.link_beta_factor is not None:
                self._beta_faulty = self._beta * self.faults.link_beta_factor
            else:
                self._beta_faulty = self._beta
        self.sanitizer: FabricSanitizer | None = None
        if sanitize:
            self.sanitizer = FabricSanitizer(num_ranks, tracer=self.tracer)
            if self.tracer.enabled:
                self.tracer.event(
                    "enabled",
                    cat="sanitizer",
                    deadlock_threshold=self.sanitizer.deadlock_threshold,
                )

    # -- data movement ----------------------------------------------------

    def exchange(
        self, outboxes: list[Mapping[int, Message]]
    ) -> list[Message | None]:
        """Personalized all-to-all: ``outboxes[src][dst]`` -> inbox per dst.

        Returns, for every rank, the concatenation of all messages addressed
        to it (sources in rank order), or ``None`` when it received nothing.
        Charges one superstep of communication time:
        ``max over ranks of max(send time, recv time) + barrier``.

        When tracing, the whole collective runs inside a ``fabric_exchange``
        span: its *wall* duration is the driver-side cost of moving payloads
        between ranks, which the profiler attributes to the transport
        bucket (timing flows through the tracer, never ad-hoc clocks).
        """
        with self.tracer.span("fabric_exchange", cat="fabric", kind="alltoallv"):
            return self._exchange_body(outboxes)

    def _exchange_body(
        self, outboxes: list[Mapping[int, Message]]
    ) -> list[Message | None]:
        if len(outboxes) != self.num_ranks:
            raise ValueError(f"need {self.num_ranks} outboxes, got {len(outboxes)}")
        p = self.num_ranks
        bytes_matrix = np.zeros((p, p), dtype=np.int64)
        msg_count = 0
        inbound: list[list[Message]] = [[] for _ in range(p)]
        for src, outbox in enumerate(outboxes):
            for dst, msg in outbox.items():
                if not (0 <= dst < p):
                    raise ValueError(f"rank {src} addressed invalid rank {dst}")
                if msg is None or len(msg) == 0:
                    continue
                bytes_matrix[src, dst] += msg.nbytes
                msg_count += 1
                inbound[dst].append(msg)
        if msg_count == 0:
            step = 0.0
        elif self.hierarchical:
            step = self._hierarchical_step_cost(bytes_matrix)
        elif self.faults is not None:
            step = self._direct_step_cost(bytes_matrix, beta=self._beta_faulty)
        else:
            step = self._direct_step_cost(bytes_matrix)
        self.clock.charge("comm", step)
        self.clock.charge("sync", self.topology.barrier_cost())
        self.trace.record_exchange(bytes_matrix, self._tiers, msg_count)
        self.trace.barriers += 1
        fault_tags: dict[str, int] = {}
        if self.faults is not None:
            fault_tags = self._inject_faults(
                self.trace.supersteps - 1,
                bytes_matrix,
                retry_cost=lambda m: self._direct_step_cost(m, beta=self._beta_faulty),
            )
        if self.tracer.enabled:
            # One telemetry row per CommTrace superstep, byte-exact: the
            # timeline report's totals must equal CommTrace.total_bytes.
            self.tracer.event(
                "exchange",
                cat="fabric",
                kind="alltoallv",
                step=self.trace.supersteps - 1,
                bytes=int(bytes_matrix.sum()),
                messages=msg_count,
                **fault_tags,
            )
        delivered = [Message.concat(msgs) for msgs in inbound]
        if self.sanitizer is not None:
            self.sanitizer.check_exchange(
                self.trace.supersteps - 1, inbound, delivered, fault_tags
            )
        return delivered

    def _direct_step_cost(
        self, bytes_matrix: np.ndarray, beta: np.ndarray | None = None
    ) -> float:
        """Each message costs alpha + bytes*beta on both sides; a rank's
        step cost is the max of its send and receive pipelines.  ``beta``
        overrides the healthy inverse-bandwidth matrix (degraded links)."""
        if beta is None:
            beta = self._beta
        has_msg = bytes_matrix > 0
        per_pair = np.where(has_msg, self._alpha + bytes_matrix * beta, 0.0)
        send_time = per_pair.sum(axis=1)
        recv_time = per_pair.sum(axis=0)
        return float(np.maximum(send_time, recv_time).max())

    # -- fault injection ----------------------------------------------------

    def _inject_faults(self, step: int, bytes_matrix: np.ndarray, retry_cost) -> dict:
        """Apply the fault schedule to the superstep recorded last.

        Models the ack/retry protocol: delayed messages and stalled ranks
        extend the phase (charged to the ``faults`` clock component);
        dropped messages wait out an ack timeout with exponential backoff
        and are retransmitted (wire time charged to ``comm`` via
        ``retry_cost``, bytes recorded as retransmissions).  Returns tags
        for the superstep's telemetry event.
        """
        plan = self.faults
        spec = plan.spec
        src, dst = np.nonzero(bytes_matrix)
        fault_wait = 0.0
        # Delay/jitter: the phase completes when the slowest delayed
        # message lands.
        if src.size and (spec.delay > 0.0 or spec.jitter > 0.0):
            fault_wait += float(plan.delay_of(step, src, dst).max())
        # Transient rank stalls: BSP semantics, the slowest rank bounds the
        # step, so the worst stall is the global cost.
        stall = plan.stall_times(step)
        num_stalled = int(np.count_nonzero(stall))
        if num_stalled:
            worst_stall = float(stall.max())
            fault_wait += worst_stall
            self.trace.stalls += num_stalled
            if self.tracer.enabled:
                self.tracer.event(
                    "fault",
                    cat="fabric",
                    kind="stall",
                    step=step,
                    ranks=num_stalled,
                    seconds=worst_stall,
                )
        # Drops -> ack/retry rounds with timeout + exponential backoff.
        retry_bytes = 0
        drop_events = 0
        rounds = 0
        if src.size and spec.drop > 0.0:
            dropped = plan.drop_mask(step, src, dst, 0)
            attempt = 0
            while dropped.any():
                attempt += 1
                if attempt > spec.max_retries:
                    pairs = list(zip(src.tolist(), dst.tolist()))[:4]
                    raise UndeliverableMessageError(
                        f"messages on links {pairs} still dropped after "
                        f"{spec.max_retries} retries (drop={spec.drop}, "
                        f"seed={spec.seed}, superstep={step})"
                    )
                src, dst = src[dropped], dst[dropped]
                drop_events += int(src.size)
                rounds += 1
                retry_matrix = np.zeros_like(bytes_matrix)
                retry_matrix[src, dst] = bytes_matrix[src, dst]
                round_bytes = int(retry_matrix.sum())
                retry_bytes += round_bytes
                # Senders detect the loss after the (backed-off) ack
                # timeout, then resend over the wire.
                fault_wait += self._fault_timeout * spec.backoff ** (attempt - 1)
                self.clock.charge("comm", retry_cost(retry_matrix))
                if self.tracer.enabled:
                    self.tracer.event(
                        "fault",
                        cat="fabric",
                        kind="retry",
                        step=step,
                        attempt=attempt,
                        messages=int(src.size),
                        bytes=round_bytes,
                    )
                dropped = plan.drop_mask(step, src, dst, attempt)
        if fault_wait > 0.0:
            self.clock.charge("faults", fault_wait)
        if drop_events:
            self.trace.record_retransmissions(retry_bytes, drop_events, rounds)
        return {"retry_bytes": retry_bytes, "drops": drop_events, "retries": rounds}

    def _hierarchical_step_cost(self, bytes_matrix: np.ndarray) -> float:
        """Three-stage leader routing for inter-supernode traffic.

        Stage A: members forward their inter-SN payload to the supernode
        leader (intra-SN hop).  Stage B: leaders exchange aggregated
        payloads (inter-SN hop).  Stage C: destination leaders scatter to
        members (intra-SN hop).  Intra-SN traffic still goes direct and
        overlaps stage A.  The stages serialize; the slowest rank bounds
        each stage.
        """
        m = self.machine
        sn = self.topology.supernode
        num_sn = self.topology.num_supernodes()
        if num_sn == 1:
            return self._direct_step_cost(bytes_matrix)
        inter_mask = sn[:, None] != sn[None, :]
        intra_bytes = np.where(~inter_mask, bytes_matrix, 0)
        inter_bytes = np.where(inter_mask, bytes_matrix, 0)
        # Leaders are the first rank of each supernode.
        leader_of = np.zeros(self.num_ranks, dtype=np.int64)
        for s in range(num_sn):
            members = np.flatnonzero(sn == s)
            leader_of[members] = members[0]
        is_leader = leader_of == np.arange(self.num_ranks)
        # Stage A: member -> leader gather of outbound inter-SN payload.
        out_inter = inter_bytes.sum(axis=1)
        a_send = np.where(
            (out_inter > 0) & ~is_leader, m.alpha_intra + out_inter * m.beta_intra, 0.0
        )
        a_recv = np.zeros(self.num_ranks)
        np.add.at(a_recv, leader_of, np.where(~is_leader, out_inter, 0))
        a_recv = np.where(a_recv > 0, m.alpha_intra + a_recv * m.beta_intra, 0.0)
        stage_a = float(np.maximum(a_send, a_recv).max())
        # Forwarded bytes: everything a non-leader handed to its leader, and
        # everything a destination leader re-sends (stage C), counted as
        # extra intra-SN traffic.
        forwarded = int(np.where(~is_leader, out_inter, 0).sum())
        # Stage B: leader <-> leader aggregated exchange.
        sn_matrix = np.zeros((num_sn, num_sn), dtype=np.int64)
        for s1 in range(num_sn):
            rows = sn == s1
            for s2 in range(num_sn):
                if s1 != s2:
                    sn_matrix[s1, s2] = inter_bytes[np.ix_(rows, sn == s2)].sum()
        has = sn_matrix > 0
        per_pair = np.where(has, m.alpha_inter + sn_matrix * m.beta_inter, 0.0)
        stage_b = float(np.maximum(per_pair.sum(axis=1), per_pair.sum(axis=0)).max())
        # Stage C: destination leader -> member scatter.
        in_inter = inter_bytes.sum(axis=0)
        c_recv = np.where(
            (in_inter > 0) & ~is_leader, m.alpha_intra + in_inter * m.beta_intra, 0.0
        )
        c_send = np.zeros(self.num_ranks)
        np.add.at(c_send, leader_of, np.where(~is_leader, in_inter, 0))
        c_send = np.where(c_send > 0, m.alpha_intra + c_send * m.beta_intra, 0.0)
        stage_c = float(np.maximum(c_send, c_recv).max())
        forwarded += int(np.where(~is_leader, in_inter, 0).sum())
        self.trace.bytes_forwarded += forwarded
        # Direct intra-SN traffic overlaps stage A.
        has_intra = intra_bytes > 0
        intra_pair = np.where(has_intra, m.alpha_intra + intra_bytes * m.beta_intra, 0.0)
        direct = float(
            np.maximum(intra_pair.sum(axis=1), intra_pair.sum(axis=0)).max()
        )
        return max(stage_a, direct) + stage_b + stage_c

    # -- collectives -------------------------------------------------------

    def allreduce(self, values: np.ndarray, op: str = "sum") -> float:
        """Reduce one scalar contribution per rank; all ranks get the result.

        Charged as a reduce+broadcast latency tree (payloads are a few
        bytes, so only alpha matters).  When tracing, the collective runs
        inside a ``fabric_allreduce`` span whose wall duration the profiler
        attributes to barrier wait (it is a synchronization point).
        """
        with self.tracer.span("fabric_allreduce", cat="fabric", op=op):
            return self._allreduce_body(values, op)

    def _allreduce_body(self, values: np.ndarray, op: str) -> float:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.num_ranks,):
            raise ValueError(f"expected one value per rank, got shape {values.shape}")
        ops = {"sum": np.sum, "min": np.min, "max": np.max}
        if op not in ops:
            raise ValueError(f"unsupported allreduce op {op!r}")
        if self.sanitizer is not None:
            self.sanitizer.check_allreduce(values, op)
        self.clock.charge("sync", 2.0 * self.topology.barrier_cost())
        self.trace.allreduces += 1
        if self.tracer.enabled:
            self.tracer.event("allreduce", cat="fabric", op=op)
        return float(ops[op](values))

    def allreduce_any(self, flags: np.ndarray) -> bool:
        """Logical-OR allreduce (termination detection)."""
        return self.allreduce(np.asarray(flags, dtype=np.float64), op="max") > 0.0

    def allgather(self, contributions: list[Message | None]) -> list[Message | None]:
        """Every rank contributes a message; all ranks receive them all.

        Returns, for each rank, the concatenation of every non-empty
        contribution in rank order (``None`` when nothing was contributed).
        Modeled as recursive doubling: log2(P) rounds, each moving the
        accumulated payload, so the per-rank cost is
        ``alpha * log2(P) + total_bytes * beta`` — far cheaper than the
        P*(P-1) point-to-point emulation and the reason real codes use the
        collective for frontier bitmaps.

        When tracing, the collective runs inside a ``fabric_allgather``
        span; the profiler attributes its wall duration to transport.
        """
        with self.tracer.span("fabric_allgather", cat="fabric"):
            return self._allgather_body(contributions)

    def _allgather_body(
        self, contributions: list[Message | None]
    ) -> list[Message | None]:
        if len(contributions) != self.num_ranks:
            raise ValueError(f"need {self.num_ranks} contributions, got {len(contributions)}")
        nonempty = [m for m in contributions if m is not None and len(m) > 0]
        total_bytes = sum(m.nbytes for m in nonempty)
        if nonempty and self.num_ranks > 1:
            depth = int(np.ceil(np.log2(self.num_ranks)))
            worst_alpha = max(
                float(self._alpha.max(initial=0.0)), self.machine.alpha_intra
            )
            worst_beta = max(float(self._beta.max(initial=0.0)), self.machine.beta_intra)
            self.clock.charge("comm", depth * worst_alpha + total_bytes * worst_beta)
            # Traffic accounting: each rank ends up holding every byte once.
            p = self.num_ranks
            bytes_matrix = np.zeros((p, p), dtype=np.int64)
            for src, m in enumerate(contributions):
                if m is not None and len(m) > 0:
                    bytes_matrix[src, :] = m.nbytes
                    bytes_matrix[src, src] = 0
            self.trace.record_exchange(bytes_matrix, self._tiers, len(nonempty))
            fault_tags: dict[str, int] = {}
            if self.faults is not None:
                # A lost round of the recursive-doubling tree re-moves the
                # accumulated payload after the backed-off timeout.
                fault_tags = self._inject_faults(
                    self.trace.supersteps - 1,
                    bytes_matrix,
                    retry_cost=lambda m: depth * worst_alpha + float(m.sum()) * worst_beta,
                )
            if self.tracer.enabled:
                self.tracer.event(
                    "exchange",
                    cat="fabric",
                    kind="allgather",
                    step=self.trace.supersteps - 1,
                    bytes=int(bytes_matrix.sum()),
                    messages=len(nonempty),
                    **fault_tags,
                )
        self.clock.charge("sync", self.topology.barrier_cost())
        self.trace.barriers += 1
        gathered = Message.concat(nonempty) if nonempty else None
        delivered = [gathered for _ in range(self.num_ranks)]
        if self.sanitizer is not None:
            self.sanitizer.check_allgather(
                self.trace.supersteps - 1, contributions, delivered
            )
        return delivered

    # -- compute charging ----------------------------------------------------

    _RATE_BY_COMPONENT = {
        "edges": "edge_rate",
        "bucket_ops": "bucket_rate",
        "bytes": "memcpy_rate",
    }

    def charge_compute(self, **work: np.ndarray) -> None:
        """Charge one compute phase given per-rank work counts.

        ``work`` maps a component name (``edges``, ``bucket_ops``,
        ``bytes``) to an array of per-rank operation counts.  The phase
        takes as long as its slowest rank — this is where load imbalance
        becomes simulated time.
        """
        per_rank = np.zeros(self.num_ranks, dtype=np.float64)
        for component, counts in work.items():
            rate_attr = self._RATE_BY_COMPONENT.get(component)
            if rate_attr is None:
                raise ValueError(f"unknown work component {component!r}")
            counts = np.asarray(counts, dtype=np.float64)
            if counts.shape != (self.num_ranks,):
                raise ValueError(f"expected one count per rank for {component!r}")
            if np.any(counts < 0):
                raise ValueError(f"negative work counts for {component!r}")
            per_rank += counts / getattr(self.machine, rate_attr)
            acc = self.work_per_rank.setdefault(
                component, np.zeros(self.num_ranks, dtype=np.int64)
            )
            acc += counts.astype(np.int64)
        self.clock.charge("compute", float(per_rank.max()))

    # -- reporting -----------------------------------------------------------

    def compute_imbalance(self, component: str = "edges") -> float:
        """Max/mean of accumulated per-rank work (1.0 = balanced)."""
        acc = self.work_per_rank.get(component)
        if acc is None or acc.mean() == 0:
            return 1.0
        return float(acc.max() / acc.mean())
