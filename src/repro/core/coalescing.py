"""Message coalescing: per-destination reduction and wire packing.

On a scale-free graph a single light phase can generate many updates for
the *same* remote vertex (every frontier vertex adjacent to it produces
one).  Sending them all wastes bandwidth; only the minimum can win at the
receiver.  :func:`dedup_min` reduces a batch of ``(target, dist)`` updates
to one entry per target — the send-side half of the paper-style coalescing,
whose receive-side half is the owner's scatter-min.

:func:`pack_updates` / :func:`unpack_updates` implement the wire format,
including the optional uint32 index compression (a third of the record is
the index; halving it saves ~17% of bytes on 64-bit-index graphs).
"""

from __future__ import annotations

import numpy as np

from repro.simmpi.fabric import Message

__all__ = ["dedup_min", "pack_updates", "unpack_updates"]

_UINT32_MAX = np.iinfo(np.uint32).max


def dedup_min(targets: np.ndarray, dists: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reduce updates to one minimum-distance entry per target.

    Returns ``(unique_targets, min_dists)`` with targets sorted ascending.
    """
    targets = np.asarray(targets, dtype=np.int64)
    dists = np.asarray(dists, dtype=np.float64)
    if targets.shape != dists.shape:
        raise ValueError("targets/dists length mismatch")
    if targets.size == 0:
        return targets, dists
    # Introsort, not stable: ``min`` per target group is independent of
    # within-group order, and stable (timsort) costs ~5x more on int64.
    order = np.argsort(targets)
    st = targets[order]
    sd = dists[order]
    starts = np.empty(st.size, dtype=bool)
    starts[0] = True
    np.not_equal(st[1:], st[:-1], out=starts[1:])
    idx = np.flatnonzero(starts)
    return st[idx], np.minimum.reduceat(sd, idx)


def pack_updates(
    targets: np.ndarray,
    dists: np.ndarray,
    kinds: np.ndarray,
    compress: bool,
    num_vertices: int,
) -> Message:
    """Pack update records into a wire message.

    ``kinds`` distinguishes record types (0 = distance update to an owned
    vertex, 1 = light hub announcement, 2 = heavy hub announcement).
    Distances are always float64 — compressing them would break the
    float-exact tree validation.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if compress and num_vertices <= _UINT32_MAX:
        vertex = targets.astype(np.uint32)
    else:
        vertex = targets
    return Message(
        vertex=vertex,
        dist=np.asarray(dists, dtype=np.float64),
        kind=np.asarray(kinds, dtype=np.uint8),
    )


def unpack_updates(msg: Message) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_updates`: ``(targets int64, dists, kinds)``."""
    return (
        msg["vertex"].astype(np.int64),
        msg["dist"],
        msg["kind"],
    )
