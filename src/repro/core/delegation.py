"""Hub delegation: splitting high-degree vertices' adjacency across ranks.

A scale-free hub with degree d >> P is a double problem for a 1-D
partition: its owner does O(d) relaxation work alone (load imbalance), and
emits O(d) remote updates in one phase (traffic burst).  Delegation fixes
both: each rank holds a 1/P slice of every hub's adjacency list; when a
hub's distance settles, its owner broadcasts one ``(hub, dist)`` record to
all ranks, and every rank relaxes its own slice locally.  O(d) work becomes
O(d / P) per rank, and O(d) messages become O(P).

:class:`DelegateTable` is the per-rank data structure: a small CSR indexed
by *hub slot* (dense id in the sorted hub list) holding that rank's slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph, _ranges_to_indices

__all__ = ["DelegateTable", "auto_hub_threshold", "select_hubs"]


def auto_hub_threshold(graph: CSRGraph, num_ranks: int) -> int:
    """Default delegation threshold.

    Delegating costs a P-message broadcast, so it only pays for vertices
    whose degree comfortably exceeds both the rank count and the typical
    degree.  ``max(2 * P, 8 * mean_degree)`` keeps the hub set small (the
    heavy tail only) while catching everything that matters.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    mean_degree = graph.num_edges / max(graph.num_vertices, 1)
    return int(max(2 * num_ranks, int(np.ceil(8 * mean_degree)), 1))


def select_hubs(graph: CSRGraph, threshold: int) -> np.ndarray:
    """Sorted ids of vertices with out-degree >= threshold."""
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    return np.flatnonzero(graph.out_degree >= threshold).astype(np.int64)


@dataclass
class DelegateTable:
    """One rank's slices of all hub adjacency lists.

    ``hubs`` is the sorted global hub id list (identical on every rank);
    ``indptr``/``adj``/``weight`` form a CSR over hub *slots*.  Slices are
    interleaved (hub's edge ``j`` goes to rank ``j % P``) so every rank gets
    an even share of every hub, not just of the total.
    """

    hubs: np.ndarray
    indptr: np.ndarray
    adj: np.ndarray
    weight: np.ndarray

    @classmethod
    def build(cls, graph: CSRGraph, hubs: np.ndarray, rank: int, num_ranks: int) -> "DelegateTable":
        """Extract rank ``rank``'s interleaved slice of each hub's row."""
        hubs = np.asarray(hubs, dtype=np.int64)
        if hubs.size and np.any(np.diff(hubs) <= 0):
            raise ValueError("hubs must be sorted and unique")
        if not (0 <= rank < num_ranks):
            raise ValueError(f"rank {rank} out of range [0, {num_ranks})")
        # This rank's interleaved positions of hub ``h``'s row are
        # ``indptr[h] + rank, indptr[h] + rank + P, ...`` — materialized for
        # all hubs at once with the repeat/cumsum trick (no Python loop).
        starts = graph.indptr[hubs] + rank
        stops = graph.indptr[hubs + 1]
        lengths = np.maximum(0, -(-(stops - starts) // num_ranks))
        indptr = np.zeros(hubs.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        total = int(indptr[-1])
        intra = np.arange(total, dtype=np.int64) - np.repeat(indptr[:-1], lengths)
        idx = np.repeat(starts, lengths) + num_ranks * intra
        return cls(
            hubs=hubs,
            indptr=indptr,
            adj=graph.adj[idx],
            weight=graph.weight[idx],
        )

    @property
    def num_hubs(self) -> int:
        return int(self.hubs.size)

    @property
    def num_edges(self) -> int:
        return int(self.adj.size)

    def slots_of(self, vertices: np.ndarray) -> np.ndarray:
        """Hub-slot index of each vertex; raises if any is not a hub."""
        vertices = np.asarray(vertices, dtype=np.int64)
        slots = np.searchsorted(self.hubs, vertices)
        if np.any(slots >= self.hubs.size) or np.any(self.hubs[slots] != vertices):
            raise KeyError("vertex is not a delegated hub")
        return slots

    def is_hub(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``vertices`` are delegated hubs."""
        vertices = np.asarray(vertices, dtype=np.int64)
        slots = np.searchsorted(self.hubs, vertices)
        ok = slots < self.hubs.size
        out = np.zeros(vertices.shape, dtype=bool)
        out[ok] = self.hubs[slots[ok]] == vertices[ok]
        return out

    def expand(
        self,
        hub_vertices: np.ndarray,
        hub_dists: np.ndarray,
        weight_max: float | None = None,
        weight_min: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Relaxation candidates from this rank's slices of the given hubs.

        Mirrors :func:`repro.core.relaxation.expand` but sources distances
        from the announcement payload instead of a local array.  Returns
        ``(targets, candidate_dists, edges_scanned)``.
        """
        slots = self.slots_of(hub_vertices)
        deg = self.indptr[slots + 1] - self.indptr[slots]
        total = int(deg.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64), 0
        src_dist = np.repeat(np.asarray(hub_dists, dtype=np.float64), deg)
        idx = _ranges_to_indices(self.indptr[slots], self.indptr[slots + 1])
        targets = self.adj[idx]
        w = self.weight[idx]
        keep = np.ones(total, dtype=bool)
        if weight_max is not None:
            keep &= w < weight_max
        if weight_min is not None:
            keep &= w >= weight_min
        return targets[keep], src_dist[keep] + w[keep], total
