"""Hub delegation: splitting high-degree vertices' adjacency across ranks.

A scale-free hub with degree d >> P is a double problem for a 1-D
partition: its owner does O(d) relaxation work alone (load imbalance), and
emits O(d) remote updates in one phase (traffic burst).  Delegation fixes
both: each rank holds a 1/P slice of every hub's adjacency list; when a
hub's distance settles, its owner broadcasts one ``(hub, dist)`` record to
all ranks, and every rank relaxes its own slice locally.  O(d) work becomes
O(d / P) per rank, and O(d) messages become O(P).

:class:`DelegateTable` is the per-rank data structure: a small CSR indexed
by *hub slot* (dense id in the sorted hub list) holding that rank's slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["DelegateTable", "auto_hub_threshold", "select_hubs"]


def auto_hub_threshold(graph: CSRGraph, num_ranks: int) -> int:
    """Default delegation threshold.

    Delegating costs a P-message broadcast, so it only pays for vertices
    whose degree comfortably exceeds both the rank count and the typical
    degree.  ``max(2 * P, 8 * mean_degree)`` keeps the hub set small (the
    heavy tail only) while catching everything that matters.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    mean_degree = graph.num_edges / max(graph.num_vertices, 1)
    return int(max(2 * num_ranks, int(np.ceil(8 * mean_degree)), 1))


def select_hubs(graph: CSRGraph, threshold: int) -> np.ndarray:
    """Sorted ids of vertices with out-degree >= threshold."""
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    return np.flatnonzero(graph.out_degree >= threshold).astype(np.int64)


@dataclass
class DelegateTable:
    """One rank's slices of all hub adjacency lists.

    ``hubs`` is the sorted global hub id list (identical on every rank);
    ``indptr``/``adj``/``weight`` form a CSR over hub *slots*.  Slices are
    interleaved (hub's edge ``j`` goes to rank ``j % P``) so every rank gets
    an even share of every hub, not just of the total.
    """

    hubs: np.ndarray
    indptr: np.ndarray
    adj: np.ndarray
    weight: np.ndarray

    @classmethod
    def build(cls, graph: CSRGraph, hubs: np.ndarray, rank: int, num_ranks: int) -> "DelegateTable":
        """Extract rank ``rank``'s interleaved slice of each hub's row."""
        hubs = np.asarray(hubs, dtype=np.int64)
        if hubs.size and np.any(np.diff(hubs) <= 0):
            raise ValueError("hubs must be sorted and unique")
        if not (0 <= rank < num_ranks):
            raise ValueError(f"rank {rank} out of range [0, {num_ranks})")
        adj_parts: list[np.ndarray] = []
        w_parts: list[np.ndarray] = []
        lengths = np.zeros(hubs.size, dtype=np.int64)
        for slot, h in enumerate(hubs):
            lo, hi = graph.indptr[h], graph.indptr[h + 1]
            sl = slice(lo + rank, hi, num_ranks)
            a = graph.adj[sl]
            adj_parts.append(a)
            w_parts.append(graph.weight[sl])
            lengths[slot] = a.size
        indptr = np.zeros(hubs.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        adj = np.concatenate(adj_parts) if adj_parts else np.empty(0, dtype=np.int64)
        weight = np.concatenate(w_parts) if w_parts else np.empty(0, dtype=np.float64)
        return cls(hubs=hubs, indptr=indptr, adj=adj, weight=weight)

    @property
    def num_hubs(self) -> int:
        return int(self.hubs.size)

    @property
    def num_edges(self) -> int:
        return int(self.adj.size)

    def slots_of(self, vertices: np.ndarray) -> np.ndarray:
        """Hub-slot index of each vertex; raises if any is not a hub."""
        vertices = np.asarray(vertices, dtype=np.int64)
        slots = np.searchsorted(self.hubs, vertices)
        if np.any(slots >= self.hubs.size) or np.any(self.hubs[slots] != vertices):
            raise KeyError("vertex is not a delegated hub")
        return slots

    def is_hub(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``vertices`` are delegated hubs."""
        vertices = np.asarray(vertices, dtype=np.int64)
        slots = np.searchsorted(self.hubs, vertices)
        ok = slots < self.hubs.size
        out = np.zeros(vertices.shape, dtype=bool)
        out[ok] = self.hubs[slots[ok]] == vertices[ok]
        return out

    def expand(
        self,
        hub_vertices: np.ndarray,
        hub_dists: np.ndarray,
        weight_max: float | None = None,
        weight_min: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Relaxation candidates from this rank's slices of the given hubs.

        Mirrors :func:`repro.core.relaxation.expand` but sources distances
        from the announcement payload instead of a local array.  Returns
        ``(targets, candidate_dists, edges_scanned)``.
        """
        slots = self.slots_of(hub_vertices)
        deg = self.indptr[slots + 1] - self.indptr[slots]
        total = int(deg.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64), 0
        src_dist = np.repeat(np.asarray(hub_dists, dtype=np.float64), deg)
        idx_parts = []
        for slot in range(slots.size):
            idx_parts.append(np.arange(self.indptr[slots[slot]], self.indptr[slots[slot] + 1]))
        idx = np.concatenate(idx_parts)
        targets = self.adj[idx]
        w = self.weight[idx]
        keep = np.ones(total, dtype=bool)
        if weight_max is not None:
            keep &= w < weight_max
        if weight_min is not None:
            keep &= w >= weight_min
        return targets[keep], src_dist[keep] + w[keep], total
