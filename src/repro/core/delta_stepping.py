"""Shared-memory ∆-stepping (Meyer & Sanders 2003), fully vectorized.

The algorithm the distributed engine parallelizes.  Work proceeds in
*epochs* (one per non-empty bucket, in index order); inside an epoch, the
current bucket is drained through *light phases* — each relaxes only edges
with ``w < ∆``, which may re-insert vertices into the same bucket — until
the bucket stays empty, after which all *heavy* edges (``w >= ∆``) of every
vertex settled this epoch are relaxed once.

Each light phase maps to one global synchronization in the distributed
version, so the counters recorded here (epochs, phases, relaxations,
re-insertions) are exactly the quantities the paper's optimizations attack.
"""

from __future__ import annotations

import numpy as np

from repro._deprecation import legacy_removed
from repro.core.adaptive import choose_delta
from repro.core.buckets import BucketQueue
from repro.core.relaxation import expand, scatter_min
from repro.core.result import SSSPResult, derive_parents
from repro.engine.validation import check_delta, check_source
from repro.graph.csr import CSRGraph
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["delta_stepping"]


def delta_stepping(*args, **kwargs):
    """Removed legacy entry point for the shared-memory ∆-stepping kernel.

    Raises :class:`RuntimeError` pointing at ``repro.run`` — the unified
    kernel-registry facade with the same semantics and a uniform return
    shape.
    """
    legacy_removed(
        "delta_stepping", 'repro.run(graph, source, kernel="sssp", engine="shared")'
    )


def _delta_stepping(
    graph: CSRGraph,
    source: int,
    delta: float | None = None,
    max_phases: int | None = None,
    tracer: Tracer | None = None,
) -> SSSPResult:
    """Exact SSSP from ``source`` by bucketed ∆-stepping.

    ``delta=None`` selects ∆ adaptively (:func:`repro.core.adaptive.choose_delta`).
    ``max_phases`` is a safety valve for tests; the algorithm terminates on
    its own for positive weights.

    ``tracer`` (optional) receives one wall-clock ``epoch`` span per bucket
    (there is no simulated clock in the shared-memory kernel).
    """
    if tracer is None:
        tracer = NULL_TRACER
    n = graph.num_vertices
    check_source(graph, source)
    adaptive = delta is None
    if delta is None:
        delta = choose_delta(graph)
    # Validate the *chosen* value, not just the caller's: a degenerate
    # weight distribution can push the adaptive heuristic to 0 or NaN, and
    # BucketQueue would spin forever on a non-positive bucket width.
    delta = check_delta(delta, adaptive)

    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    buckets = BucketQueue(dist, delta)
    buckets.insert(np.array([source], dtype=np.int64))

    epochs = 0
    phases = 0
    relaxed = 0
    reinsertions = 0
    in_epoch = np.zeros(n, dtype=bool)  # members of R, the epoch's settled set

    while True:
        k = buckets.min_live_bucket()
        if k is None:
            break
        epochs += 1
        in_epoch[:] = False
        settled_parts: list[np.ndarray] = []
        with tracer.span("epoch", cat="engine", epoch=epochs, bucket=k) as ep:
            epoch_relaxed = relaxed
            epoch_phases = phases
            # -- light phases: drain bucket k to empty.  A vertex whose
            # distance improves while still in bucket k is drained *again* so
            # its light edges see the smaller distance (Meyer-Sanders
            # re-processing).
            while True:
                frontier = buckets.drain(k)
                if frontier.size == 0:
                    break
                if max_phases is not None and phases >= max_phases:
                    raise RuntimeError(f"exceeded max_phases={max_phases}")
                phases += 1
                fresh = frontier[~in_epoch[frontier]]
                in_epoch[fresh] = True
                if fresh.size:
                    settled_parts.append(fresh)
                targets, cands, scanned = expand(
                    graph, frontier, dist, weight_max=delta
                )
                relaxed += scanned
                improved = scatter_min(dist, targets, cands)
                if improved.size:
                    idx = buckets.bucket_index(improved)
                    reinsertions += int(np.count_nonzero(idx == k))
                    buckets.insert(improved)
            # -- heavy phase: settled vertices relax their heavy edges once --
            if settled_parts:
                settled = np.concatenate(settled_parts)
                targets, cands, scanned = expand(
                    graph, settled, dist, weight_min=delta
                )
                relaxed += scanned
                improved = scatter_min(dist, targets, cands)
                buckets.insert(improved)
            ep.tag(
                edges=relaxed - epoch_relaxed,
                phases=phases - epoch_phases,
                settled=int(sum(p.size for p in settled_parts)),
            )

    result = SSSPResult(
        source=source,
        dist=dist,
        parent=derive_parents(graph, dist, source),
    )
    result.counters.add("epochs", epochs)
    result.counters.add("phases", phases)
    result.counters.add("edges_relaxed", relaxed)
    result.counters.add("reinsertions", reinsertions)
    result.counters.add("bucket_ops", buckets.ops)
    result.meta["algorithm"] = "delta_stepping"
    result.meta["delta"] = float(delta)
    return result
