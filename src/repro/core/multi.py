"""Multi-root SSSP result: a distance matrix with per-lane views.

The batched ∆-stepping kernel answers a batch of roots in one sweep over
a ``(num_vertices, num_roots)`` distance matrix.  Column ``i`` is
bit-identical to the single-root answer from ``roots[i]`` (min over
float64 path sums is exact), so ``lane(i)`` reconstructs a plain
:class:`~repro.core.result.SSSPResult` — including the shortest-path
tree, derived with the very same :func:`~repro.core.result.derive_parents`
pass the single-root engines use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.result import SSSPResult
from repro.graph.csr import CSRGraph
from repro.utils.timing import Counters

__all__ = ["MultiSSSPResult"]


@dataclass
class MultiSSSPResult:
    """Distances and trees from a batch of roots, lane-indexed.

    ``dist`` is ``(num_vertices, num_lanes)`` float64 (inf = unreachable);
    ``parent`` the matching int64 tree matrix (-1 = unreachable, root its
    own parent, per lane).
    """

    roots: np.ndarray
    # repro: index-space: dist[vertex,lane]=local, parent[vertex,lane]=global
    dist: np.ndarray
    parent: np.ndarray
    counters: Counters = field(default_factory=Counters)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.roots = np.ascontiguousarray(self.roots, dtype=np.int64)
        self.dist = np.ascontiguousarray(self.dist, dtype=np.float64)
        self.parent = np.ascontiguousarray(self.parent, dtype=np.int64)
        if self.dist.shape != self.parent.shape:
            raise ValueError("dist/parent shape mismatch")
        if self.dist.ndim != 2 or self.dist.shape[1] != self.roots.size:
            raise ValueError(
                f"expected (n, {self.roots.size}) lane matrices, "
                f"got {self.dist.shape}"
            )

    @property
    def num_vertices(self) -> int:
        return int(self.dist.shape[0])

    @property
    def num_lanes(self) -> int:
        return int(self.roots.size)

    def lane(self, i: int) -> SSSPResult:
        """The i-th root's answer as a single-root :class:`SSSPResult`."""
        if not 0 <= i < self.num_lanes:
            raise IndexError(f"lane {i} out of range [0, {self.num_lanes})")
        result = SSSPResult(
            source=int(self.roots[i]),
            dist=self.dist[:, i].copy(),
            parent=self.parent[:, i].copy(),
        )
        result.meta["lane"] = i
        result.meta["batched"] = True
        return result

    def traversed_edges(self, graph: CSRGraph) -> int:
        """Sum of the per-lane Graph500 TEPS numerators."""
        reached = np.isfinite(self.dist)  # (n, L)
        per_lane = graph.out_degree @ reached  # (L,)
        return int((per_lane // 2).sum())

    def validate(self, graph: CSRGraph):
        """Graph500 spec checks on every lane; failures are lane-prefixed."""
        from repro.graph500.validation import ValidationReport, validate_sssp

        failures: list[str] = []
        for i in range(self.num_lanes):
            report = validate_sssp(graph, self.lane(i))
            failures.extend(f"lane {i}: {msg}" for msg in report.failures)
        return ValidationReport(ok=not failures, failures=failures)
