"""Vectorized edge-relaxation kernels.

All SSSP variants in this library share two primitives:

* :func:`expand` — gather the out-edges of a frontier of vertices and form
  candidate distances (``dist[u] + w``), optionally restricted to light or
  heavy edges (the ∆-stepping split);
* :func:`scatter_min` — fold candidate distances into the tentative-distance
  array and report which vertices improved; small batches use the unbuffered
  ``np.minimum.at`` scatter, large ones an argsort + ``minimum.reduceat``
  reduction (bit-identical, several times faster).

Keeping them in one place means the per-edge operation counts charged to the
cost model are consistent across algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["expand", "scatter_min", "frontier_edges"]


def frontier_edges(graph: CSRGraph, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (sources-repeated, targets, weights) of the frontier's out-edges."""
    frontier = np.asarray(frontier, dtype=np.int64)
    deg = graph.degree_of(frontier)
    src = np.repeat(frontier, deg)
    total = int(deg.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    # Concatenate each frontier vertex's CSR slice with the cumsum trick.
    starts = graph.indptr[frontier]
    firsts = np.zeros(frontier.size, dtype=np.int64)
    np.cumsum(deg[:-1], out=firsts[1:])
    deltas = np.ones(total, dtype=np.int64)
    nonempty = deg > 0
    ne_firsts = firsts[nonempty]
    ne_starts = starts[nonempty]
    ne_deg = deg[nonempty]
    deltas[0] = ne_starts[0]
    deltas[ne_firsts[1:]] = ne_starts[1:] - (ne_starts[:-1] + ne_deg[:-1] - 1)
    idx = np.cumsum(deltas)
    return src, graph.adj[idx], graph.weight[idx]


def expand(
    graph: CSRGraph,
    frontier: np.ndarray,
    dist: np.ndarray,
    weight_max: float | None = None,
    weight_min: float | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Form relaxation candidates from a frontier.

    Returns ``(targets, candidate_dists, edges_scanned)``.  ``weight_max``
    keeps only edges with ``w < weight_max`` (light edges); ``weight_min``
    keeps only ``w >= weight_min`` (heavy edges).  ``edges_scanned`` counts
    every edge touched, including ones filtered out — that is the work the
    machine actually performs.
    """
    src, dst, w = frontier_edges(graph, frontier)
    scanned = int(src.size)
    if weight_max is not None:
        keep = w < weight_max
        src, dst, w = src[keep], dst[keep], w[keep]
    if weight_min is not None:
        keep = w >= weight_min
        src, dst, w = src[keep], dst[keep], w[keep]
    return dst, dist[src] + w, scanned


# Below this many candidates the unbuffered ``np.minimum.at`` scatter wins;
# above it, sorting the batch and reducing per target is several times
# faster (``minimum.at`` dispatches element-wise and cannot vectorize).
SORT_SCATTER_THRESHOLD = 96


def scatter_min(dist: np.ndarray, targets: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Fold candidates into ``dist`` in place; return improved vertex ids.

    The returned ids are unique and sorted.  Two execution paths produce
    bit-identical results (``min`` over float64 is exact, associative and
    commutative):

    * small batches: the unbuffered ``np.minimum.at`` scatter the CPE
      relaxation kernels implement in the real code;
    * large batches: argsort by target, one ``np.minimum.reduceat`` per
      target group, then a single vectorized compare-and-assign — the
      sort-based scatter-min of the hot path.
    """
    if targets.size == 0:
        return np.empty(0, dtype=np.int64)
    if targets.size < SORT_SCATTER_THRESHOLD:
        before = dist[targets]
        np.minimum.at(dist, targets, candidates)
        after = dist[targets]
        improved = np.unique(targets[after < before])
        return improved.astype(np.int64)
    # Introsort: the per-target ``min`` is order-independent, so the
    # cheaper unstable sort produces bit-identical results.
    order = np.argsort(targets)
    st = targets[order]
    sc = candidates[order]
    starts = np.empty(st.size, dtype=bool)
    starts[0] = True
    np.not_equal(st[1:], st[:-1], out=starts[1:])
    idx = np.flatnonzero(starts)
    uniq = st[idx]
    best = np.minimum.reduceat(sc, idx)
    improved = best < dist[uniq]
    winners = uniq[improved]
    dist[winners] = best[improved]
    return winners.astype(np.int64, copy=False)
