"""Vectorized edge-relaxation kernels.

All SSSP variants in this library share two primitives:

* :func:`expand` — gather the out-edges of a frontier of vertices and form
  candidate distances (``dist[u] + w``), optionally restricted to light or
  heavy edges (the ∆-stepping split);
* :func:`scatter_min` — fold candidate distances into the tentative-distance
  array with ``np.minimum.at`` and report which vertices improved.

Keeping them in one place means the per-edge operation counts charged to the
cost model are consistent across algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["expand", "scatter_min", "frontier_edges"]


def frontier_edges(graph: CSRGraph, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (sources-repeated, targets, weights) of the frontier's out-edges."""
    frontier = np.asarray(frontier, dtype=np.int64)
    deg = graph.degree_of(frontier)
    src = np.repeat(frontier, deg)
    total = int(deg.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    # Concatenate each frontier vertex's CSR slice with the cumsum trick.
    starts = graph.indptr[frontier]
    firsts = np.zeros(frontier.size, dtype=np.int64)
    np.cumsum(deg[:-1], out=firsts[1:])
    deltas = np.ones(total, dtype=np.int64)
    nonempty = deg > 0
    ne_firsts = firsts[nonempty]
    ne_starts = starts[nonempty]
    ne_deg = deg[nonempty]
    deltas[0] = ne_starts[0]
    deltas[ne_firsts[1:]] = ne_starts[1:] - (ne_starts[:-1] + ne_deg[:-1] - 1)
    idx = np.cumsum(deltas)
    return src, graph.adj[idx], graph.weight[idx]


def expand(
    graph: CSRGraph,
    frontier: np.ndarray,
    dist: np.ndarray,
    weight_max: float | None = None,
    weight_min: float | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Form relaxation candidates from a frontier.

    Returns ``(targets, candidate_dists, edges_scanned)``.  ``weight_max``
    keeps only edges with ``w < weight_max`` (light edges); ``weight_min``
    keeps only ``w >= weight_min`` (heavy edges).  ``edges_scanned`` counts
    every edge touched, including ones filtered out — that is the work the
    machine actually performs.
    """
    src, dst, w = frontier_edges(graph, frontier)
    scanned = int(src.size)
    if weight_max is not None:
        keep = w < weight_max
        src, dst, w = src[keep], dst[keep], w[keep]
    if weight_min is not None:
        keep = w >= weight_min
        src, dst, w = src[keep], dst[keep], w[keep]
    return dst, dist[src] + w, scanned


def scatter_min(dist: np.ndarray, targets: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Fold candidates into ``dist`` in place; return improved vertex ids.

    The returned ids are unique and sorted.  ``np.minimum.at`` performs the
    unbuffered scatter-min the CPE relaxation kernels implement in the real
    code.
    """
    if targets.size == 0:
        return np.empty(0, dtype=np.int64)
    before = dist[targets]
    np.minimum.at(dist, targets, candidates)
    after = dist[targets]
    improved = np.unique(targets[after < before])
    return improved.astype(np.int64)
