"""Compact ghost-vertex cache for the remote coalescing filter.

The 1-D engine's send-side coalescing filter remembers, per remote
("ghost") vertex, the best candidate distance this rank has ever sent
toward the owner; a new candidate is transmitted only if it beats that.
The dense implementation paid O(num_vertices) memory per rank to store
the cache inside the tentative-distance array.  :class:`GhostMinCache`
replaces it with a sorted key array sized by the number of *distinct
ghosts actually touched* — on a partitioned graph that is the rank's
halo, not the whole vertex set — with zero slack (no hash-table load
factor), and ``uint32`` keys when the vertex ids fit.

Batches arrive pre-sorted from the engine's dedup step, so lookups are
a single vectorized ``searchsorted`` and inserts are one merge; there
are no per-key Python loops and no probe sequences.  Operations:

* :meth:`get` — current best value per key (``inf`` for absent keys);
* :meth:`update_min` — fold ``min`` of a batch of (key, value) pairs
  into the cache, inserting new keys;
* :meth:`coalesce_batch` — the engine's hot path: dedup a batch, return
  the entries that beat the cached view, and fold them in, all in one
  pass.

Everything is deterministic: the layout is the sorted key order, fully
determined by the set of keys ever inserted.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GhostMinCache"]

_INF = np.inf


class GhostMinCache:
    """Sorted-array map ``vertex id -> float64 running minimum``.

    ``key_dtype`` picks the stored id width; callers pass ``uint32``
    when ``num_vertices`` fits, halving key bytes.  Keys must be
    non-negative vertex ids representable in that dtype.
    """

    __slots__ = ("_keys", "_vals")

    def __init__(
        self, initial_capacity: int = 0, key_dtype: np.dtype | type = np.int64
    ) -> None:
        # ``initial_capacity`` is accepted for interface compatibility;
        # the sorted layout is always exact-fit, so there is nothing to
        # preallocate.
        del initial_capacity
        self._keys = np.empty(0, dtype=key_dtype)
        self._vals = np.empty(0, dtype=np.float64)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return int(self._keys.size)

    @property
    def capacity(self) -> int:
        """Allocated entries — equal to ``len``: the layout is exact-fit."""
        return int(self._keys.size)

    @property
    def nbytes(self) -> int:
        return int(self._keys.nbytes + self._vals.nbytes)

    # -- lookup ------------------------------------------------------------

    def _locate(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(insertion positions, hit mask) for ``keys`` (any int dtype)."""
        if keys.dtype != self._keys.dtype:
            keys = keys.astype(self._keys.dtype)
        pos = np.searchsorted(self._keys, keys)
        hit = np.zeros(keys.shape, dtype=bool)
        inb = pos < self._keys.size
        hit[inb] = self._keys[pos[inb]] == keys[inb]
        return pos, hit

    def get(self, keys: np.ndarray) -> np.ndarray:
        """Current best value per key; ``inf`` where the key is absent."""
        keys = np.asarray(keys, dtype=np.int64)
        out = np.full(keys.shape, _INF, dtype=np.float64)
        if keys.size == 0 or self._keys.size == 0:
            return out
        pos, hit = self._locate(keys)
        out[hit] = self._vals[pos[hit]]
        return out

    # -- writes ------------------------------------------------------------

    def update_min(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Fold ``min(values)`` per key into the cache (inserting new keys)."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if keys.size == 0:
            return
        uniq, batch_min = _dedup_min(keys, values)
        self._fold(uniq, batch_min)

    def coalesce_batch(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dedup, filter against the cached view, and fold — one pass.

        Returns ``(kept_keys, kept_vals)``: one entry per distinct key
        whose batch minimum beats the value previously cached for it
        (``inf`` when absent) — exactly the entries worth transmitting,
        sorted by key.  The cache is left holding ``min(old, batch_min)``
        per key, the same state ``get`` + filter + ``update_min`` on the
        passing entries would leave: a batch entry failing the filter is
        ``>=`` the stored minimum and cannot lower it.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if keys.size == 0:
            return keys, values
        uniq, batch_min = _dedup_min(keys, values)
        old = self._fold(uniq, batch_min)
        keep = batch_min < old
        return uniq[keep], batch_min[keep]

    def _fold(self, uniq: np.ndarray, batch_min: np.ndarray) -> np.ndarray:
        """Fold sorted-unique (key, min) pairs in; return pre-fold values."""
        if self._keys.size == 0:
            self._keys = uniq.astype(self._keys.dtype)
            self._vals = batch_min.copy()
            return np.full(uniq.shape, _INF, dtype=np.float64)
        pos, hit = self._locate(uniq)
        old = np.full(uniq.shape, _INF, dtype=np.float64)
        old[hit] = self._vals[pos[hit]]
        if hit.any():
            ph = pos[hit]
            self._vals[ph] = np.minimum(self._vals[ph], batch_min[hit])
        if not hit.all():
            new = ~hit
            # One merge: np.insert places each new key before its
            # insertion position, preserving sorted order.
            self._keys = np.insert(
                self._keys, pos[new], uniq[new].astype(self._keys.dtype)
            )
            self._vals = np.insert(self._vals, pos[new], batch_min[new])
        return old


def _dedup_min(keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One (key, min value) pair per key, keys sorted ascending."""
    order = np.argsort(keys)  # min per key is order-independent: unstable ok
    sk = keys[order]
    sv = values[order]
    starts = np.empty(sk.size, dtype=bool)
    starts[0] = True
    np.not_equal(sk[1:], sk[:-1], out=starts[1:])
    idx = np.flatnonzero(starts)
    return sk[idx], np.minimum.reduceat(sv, idx)
