"""Distributed bucketed ∆-stepping on the SimMPI machine.

The algorithm is the shared-memory ∆-stepping of
:mod:`repro.core.delta_stepping`, parallelized over a 1-D vertex partition
with the optimization stack the paper's system class uses:

* **routing** — a rank relaxes the out-edges of the bucket-k vertices it
  owns; candidate updates for remote vertices are sent to their owners, who
  fold them in with a scatter-min;
* **coalescing** (``config.coalesce``) — before sending, updates are
  reduced to one minimum per target, and suppressed entirely when the
  sender's cached view says they cannot improve the owner's value;
* **hub delegation** (``config.delegate_hubs``) — hubs' adjacency lists are
  pre-split across all ranks; relaxing a hub broadcasts one 17-byte record
  per rank instead of one update per edge;
* **bucket fusion** (``config.fuse_buckets``) — each rank drains its
  bucket-k frontier through up to ``fusion_cap`` *local* sub-iterations
  before the global exchange, so intra-rank light-edge chains cost no
  synchronization.

One superstep = (process inbox) -> (drain/relax local bucket) -> (flush,
exchange, allreduce).  Everything a rank does between exchanges is
vectorized numpy; the fabric charges simulated time for both compute and
communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._deprecation import legacy_removed
from repro.core.adaptive import choose_delta
from repro.core.buckets import BucketQueue
from repro.core.coalescing import dedup_min, pack_updates, unpack_updates
from repro.core.config import SSSPConfig
from repro.core.delegation import DelegateTable, auto_hub_threshold, select_hubs
from repro.core.ghost_cache import GhostMinCache
from repro.core.relaxation import expand, scatter_min
from repro.core.result import SSSPResult, derive_parents
from repro.engine.driver import (
    EngineContext,
    attach_fabric_outcome,
    executor_meta,
    rank_state_meta,
    run_superstep_engine,
)
from repro.engine.validation import (
    check_delta,
    check_num_ranks,
    check_source,
    make_partition,
)
from repro.graph.csr import CSRGraph
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.partition import LocalIndexMap, Partition1D
from repro.simmpi.executor import RankExecutor
from repro.simmpi.fabric import Message
from repro.simmpi.faults import FaultPlan, FaultSpec
from repro.simmpi.machine import MachineSpec

__all__ = ["distributed_sssp", "DistSSSPRun"]

_KIND_UPDATE = 0
_KIND_LIGHT_ANNOUNCE = 1
_KIND_HEAVY_ANNOUNCE = 2

_INF = np.inf


class _Rank:
    """State and per-superstep behaviour of one simulated rank.

    All per-vertex state lives in *owned-local* index space: arrays are
    sized by the rank's owned-vertex count, not by the global vertex
    count, so a P-rank run costs O(n + halo) memory in total instead of
    O(n * P).  Global ids appear only on the wire and in the shared
    read-only ``owner`` array; :class:`LocalIndexMap` translates at the
    boundary.
    """

    def __init__(
        self,
        rank: int,
        num_ranks: int,
        graph: CSRGraph,
        owned: np.ndarray,
        owner: np.ndarray,
        delegates: DelegateTable | None,
        config: SSSPConfig,
        delta: float,
    ) -> None:
        self.rank = rank
        self.num_ranks = num_ranks
        self.config = config
        self.delta = delta
        # repro: index-space: self.owner[global], self.owned[local]=global
        # repro: index-space: self.dist[local], self.in_epoch[local]
        # repro: index-space: self.is_hub_local[local], owned=global
        # repro: shared-ro: self.owner
        self.owner = owner  # shared dense owner array (read-only use)
        self.owned = owned
        self.lmap = LocalIndexMap(owned)
        # On contiguous partitions "is it mine" is a range test — cheaper
        # than gathering from the dense owner array on every route call.
        self._own_contig = (
            owned.size > 0 and int(owned[-1]) - int(owned[0]) + 1 == owned.size
        )
        self._own_lo = int(owned[0]) if owned.size else 0
        self._own_hi = int(owned[-1]) + 1 if owned.size else 0
        self.delegates = delegates
        if delegates is not None and delegates.num_hubs:
            # Owned-local hub lookup plus a local CSR whose hub rows are
            # empty (their adjacency lives in the delegate slices).
            self.is_hub_local: np.ndarray | None = delegates.is_hub(owned)
            self.local_graph = graph.extract_rows(owned, keep=~self.is_hub_local)
        else:
            self.is_hub_local = None
            self.local_graph = graph.extract_rows(owned)
        # Authoritative tentative distances over owned vertices only.
        self.dist = np.full(owned.size, _INF, dtype=np.float64)
        # The coalescing filter cache for remote ("ghost") vertices —
        # best candidate ever sent toward each owner — lives in a compact
        # sorted-key map sized by the halo actually touched, not by n,
        # with 32-bit keys whenever the vertex ids fit.
        ghost_key_dtype = (
            np.uint32 if graph.num_vertices <= np.iinfo(np.uint32).max else np.int64
        )
        self.ghosts = (
            GhostMinCache(key_dtype=ghost_key_dtype)
            if (config.coalesce and num_ranks > 1)
            else None
        )
        self.buckets = BucketQueue(self.dist, delta)
        self.in_epoch = np.zeros(owned.size, dtype=bool)
        self.settled_parts: list[np.ndarray] = []
        # Best distance already announced per hub slot (owner-side filter).
        if delegates is not None and delegates.num_hubs:
            self.announced = np.full(delegates.num_hubs, _INF, dtype=np.float64)
        else:
            self.announced = np.empty(0, dtype=np.float64)
        # Outbox accumulators: per destination, lists of (targets, dists, kinds).
        self._out: list[list[tuple[np.ndarray, np.ndarray, int]]] = [
            [] for _ in range(num_ranks)
        ]
        # Per-superstep work counters, reset by take_step_work().
        self.step_edges = 0
        self.step_bytes = 0
        self._bucket_ops_seen = 0
        self.has_pending_announcements = False

    # -- epoch lifecycle ---------------------------------------------------

    def start_epoch(self) -> None:
        self.in_epoch[:] = False
        self.settled_parts = []

    def local_min_bucket(self) -> float:
        k = self.buckets.min_live_bucket()
        return _INF if k is None else float(k)

    def bucket_live(self, k: int) -> bool:
        return self.buckets.live_count(k) > 0

    def bucket_live_count(self, k: int) -> int:
        return int(self.buckets.live_count(k))

    def take_pending_announcements(self) -> bool:
        """Return and reset whether this rank queued a hub announcement."""
        pending = self.has_pending_announcements
        self.has_pending_announcements = False
        return pending

    # -- candidate routing ---------------------------------------------------

    def _route(self, targets: np.ndarray, cands: np.ndarray, kind: int) -> None:
        """Apply owned candidates locally; enqueue remote ones for owners."""
        # repro: wire-path
        # repro: index-space: targets=global
        # The per-destination record order this split produces is the wire
        # byte order, so the owner argsort below must stay stable.
        if targets.size == 0:
            return
        if self.num_ranks == 1:
            # Single-rank fast path: everything is owned — no owner
            # gather, no remote split, no outbox.
            improved = scatter_min(self.dist, self.lmap.to_local(targets), cands)
            if improved.size:
                self.buckets.insert(improved)
            return
        if self._own_contig:
            mine = (targets >= self._own_lo) & (targets < self._own_hi)
        else:
            mine = self.owner[targets] == self.rank
        if mine.any():
            improved = scatter_min(
                self.dist, self.lmap.to_local(targets[mine]), cands[mine]
            )
            if improved.size:
                self.buckets.insert(improved)
        rem_t = targets[~mine]
        rem_c = cands[~mine]
        if rem_t.size == 0:
            return
        if self.config.coalesce:
            # Filter through the cached view: only candidates that beat the
            # best value this rank ever sent can matter to the owner.  The
            # batch comes back deduplicated, which also shrinks the owner
            # split below and the flush-time re-dedup.
            rem_t, rem_c = self.ghosts.coalesce_batch(rem_t, rem_c)
            if rem_t.size == 0:
                return
        owners = self.owner[rem_t]
        first = int(owners[0])
        if owners.size == 1 or not np.any(owners != first):
            # All candidates share one owner (common on contiguous
            # partitions): skip the argsort/split entirely.
            self._out[first].append((rem_t, rem_c, _KIND_UPDATE))
            return
        order = np.argsort(owners, kind="stable")
        so = owners[order]
        st = rem_t[order]
        sc = rem_c[order]
        cuts = np.flatnonzero(np.diff(so)) + 1
        bounds = np.concatenate(([0], cuts, [so.size]))
        for i in range(bounds.size - 1):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            self._out[int(so[lo])].append((st[lo:hi], sc[lo:hi], _KIND_UPDATE))

    def _announce(self, hubs_local: np.ndarray, kind: int) -> None:
        """Broadcast (hub, dist) records; expand the local slice directly."""
        # repro: index-space: hubs_local=local, hubs=global
        assert self.delegates is not None
        hubs_in_frontier = self.lmap.to_global(hubs_local)
        slots = self.delegates.slots_of(hubs_in_frontier)
        d = self.dist[hubs_local]
        fresh = d < self.announced[slots]
        if kind == _KIND_HEAVY_ANNOUNCE:
            # Heavy relaxation happens once per epoch with the final value;
            # the light-phase filter must not suppress it.
            fresh = np.ones(d.shape, dtype=bool)
        else:
            self.announced[slots[fresh]] = d[fresh]
        hubs = hubs_in_frontier[fresh]
        dists = d[fresh]
        if hubs.size == 0:
            return
        for dst in range(self.num_ranks):
            if dst != self.rank:
                self._out[dst].append((hubs, dists, kind))
        self.has_pending_announcements = self.num_ranks > 1
        # This rank's own slice is expanded immediately (no self-message).
        self._expand_delegated(hubs, dists, kind)

    def _expand_delegated(self, hubs: np.ndarray, dists: np.ndarray, kind: int) -> None:
        assert self.delegates is not None
        if kind == _KIND_LIGHT_ANNOUNCE:
            targets, cands, scanned = self.delegates.expand(hubs, dists, weight_max=self.delta)
        else:
            targets, cands, scanned = self.delegates.expand(hubs, dists, weight_min=self.delta)
        self.step_edges += scanned
        self._route(targets, cands, _KIND_UPDATE)

    # -- superstep bodies ------------------------------------------------------

    def process_inbox(self, msg: Message | None) -> None:
        """Apply received updates; expand received hub announcements."""
        if msg is None:
            return
        # repro: index-space: targets=global
        targets, dists, kinds = unpack_updates(msg)
        if not kinds.any():
            # Pure-update message (the reduce phase): skip the kind split.
            improved = scatter_min(self.dist, self.lmap.to_local(targets), dists)
            if improved.size:
                self.buckets.insert(improved)
            return
        upd = kinds == _KIND_UPDATE
        if upd.any():
            # Plain updates are routed to the owner, so every target here
            # is owned by this rank.
            t = self.lmap.to_local(targets[upd])
            improved = scatter_min(self.dist, t, dists[upd])
            if improved.size:
                self.buckets.insert(improved)
        for kind in (_KIND_LIGHT_ANNOUNCE, _KIND_HEAVY_ANNOUNCE):
            sel = kinds == kind
            if sel.any():
                self._expand_delegated(targets[sel], dists[sel], kind)

    def relax_bucket(self, k: int) -> None:
        """Drain bucket ``k`` through local light sub-iterations.

        With fusion enabled this loops until the bucket stops refilling
        locally (or ``fusion_cap`` is hit); without it, one pass.
        """
        max_iters = self.config.fusion_cap if self.config.fuse_buckets else 1
        # repro: index-space: frontier=local, targets=global
        for _ in range(max_iters):
            frontier = self.buckets.drain(k)
            if frontier.size == 0:
                return
            fresh = frontier[~self.in_epoch[frontier]]
            if fresh.size:
                self.in_epoch[fresh] = True
                self.settled_parts.append(fresh)
            if self.is_hub_local is not None:
                hub_mask = self.is_hub_local[frontier]
                normal = frontier[~hub_mask]
                hubs = frontier[hub_mask]
            else:
                normal, hubs = frontier, np.empty(0, dtype=np.int64)
            if normal.size:
                targets, cands, scanned = expand(
                    self.local_graph, normal, self.dist, weight_max=self.delta
                )
                self.step_edges += scanned
                self._route(targets, cands, _KIND_UPDATE)
            if hubs.size:
                self._announce(hubs, _KIND_LIGHT_ANNOUNCE)

    def emit_heavy(self) -> None:
        """Relax the heavy edges of everything settled this epoch."""
        if not self.settled_parts:
            return
        # repro: index-space: settled=local, targets=global
        settled = np.concatenate(self.settled_parts)
        if self.is_hub_local is not None:
            hub_mask = self.is_hub_local[settled]
            normal = settled[~hub_mask]
            hubs = settled[hub_mask]
        else:
            normal, hubs = settled, np.empty(0, dtype=np.int64)
        if normal.size:
            targets, cands, scanned = expand(
                self.local_graph, normal, self.dist, weight_min=self.delta
            )
            self.step_edges += scanned
            self._route(targets, cands, _KIND_UPDATE)
        if hubs.size:
            self._announce(hubs, _KIND_HEAVY_ANNOUNCE)

    # -- flushing ---------------------------------------------------------------

    def flush_outbox(self, num_vertices: int, announcements: bool) -> dict[int, Message]:
        """Pack one class of queued records into one message per destination.

        ``announcements=True`` flushes hub announcements (the broadcast
        phase of a superstep); ``False`` flushes plain distance updates (the
        reduce phase).  Records of the other class stay queued.
        """
        out: dict[int, Message] = {}
        for dst in range(self.num_ranks):
            parts = self._out[dst]
            if not parts:
                continue
            take = [p for p in parts if (p[2] != _KIND_UPDATE) == announcements]
            if not take:
                continue
            if len(take) == len(parts):
                # Everything queued is the flushed class (the common case).
                self._out[dst] = []
            else:
                self._out[dst] = [
                    p for p in parts if (p[2] != _KIND_UPDATE) != announcements
                ]
            if len(take) == 1:
                # Single batch (the common case for broadcast rounds):
                # no concatenation copies needed.
                targets, dists = take[0][0], take[0][1]
            else:
                targets = np.concatenate([p[0] for p in take])
                dists = np.concatenate([p[1] for p in take])
            if self.config.coalesce and not announcements:
                # Dedup plain updates per target (announcements are already
                # unique per hub by the announce filter).  A lone part is
                # already sorted-unique — it came out of the ghost cache's
                # coalesce_batch — so dedup would be the identity.
                if len(take) > 1:
                    targets, dists = dedup_min(targets, dists)
                kinds = np.zeros(targets.size, dtype=np.uint8)
            elif len(take) == 1:
                kinds = np.full(targets.size, take[0][2], dtype=np.uint8)
            else:
                kinds = np.concatenate(
                    [np.full(p[0].size, p[2], dtype=np.uint8) for p in take]
                )
            msg = pack_updates(
                targets, dists, kinds, self.config.compressed_indices, num_vertices
            )
            self.step_bytes += msg.nbytes
            out[dst] = msg
        return out

    # -- fused superstep phases (one team call per exchange side) -----------
    #
    # Each light superstep used to cost up to five team calls (relax,
    # pending check, two flushes, two inbox applies); the fused methods
    # collapse them to one call per fabric exchange.  The announcement
    # flush stays conditional per rank: the pending flag is True exactly
    # when this rank queued announcement records (and implies the driver
    # will run the broadcast round — announcements require delegation),
    # so flushing only then produces byte-identical outboxes.

    def light_superstep(
        self, k: int, num_vertices: int, first: bool
    ) -> tuple[bool, dict[int, Message]]:
        """Outbound half of a light superstep: drain, relax, flush announcements.

        Returns ``(pending, announcement_outbox)``; ``first`` marks the
        epoch's first superstep and runs ``start_epoch`` inline.
        """
        if first:
            self.start_epoch()
        self.relax_bucket(k)
        pending = self.take_pending_announcements()
        ann = self.flush_outbox(num_vertices, True) if pending else {}
        return pending, ann

    def heavy_superstep(self, num_vertices: int) -> tuple[bool, dict[int, Message]]:
        """Outbound half of the heavy round: emit, flush announcements."""
        self.emit_heavy()
        pending = self.take_pending_announcements()
        ann = self.flush_outbox(num_vertices, True) if pending else {}
        return pending, ann

    def process_then_flush_updates(
        self, msg: Message | None, num_vertices: int
    ) -> dict[int, Message]:
        """Apply the announcement inbox (None when the broadcast round was
        skipped), then flush the plain-update outbox for the reduce round."""
        self.process_inbox(msg)
        return self.flush_outbox(num_vertices, False)

    def finish_light_superstep(self, msg: Message | None, k: int) -> tuple:
        """Inbound tail of a light superstep: apply updates, read out work.

        Returns ``(edges, bucket_ops, bytes, bucket_live)``; the driver
        charges the cost model from the first three and feeds the fourth
        to the continuation allreduce.
        """
        self.process_inbox(msg)
        edges, bucket_ops, nbytes = self.take_step_work()
        return (
            float(edges), float(bucket_ops), float(nbytes),
            float(self.bucket_live(k)),
        )

    def finish_epoch(self, msg: Message | None) -> tuple:
        """Inbound tail of the heavy round: apply updates, read out work.

        Returns ``(edges, bucket_ops, bytes, local_min_bucket)``; the last
        element is this rank's next termination vote, carried out of the
        fused call so the loop top needs no extra gather.
        """
        self.process_inbox(msg)
        edges, bucket_ops, nbytes = self.take_step_work()
        return (
            float(edges), float(bucket_ops), float(nbytes),
            self.local_min_bucket(),
        )

    def take_step_work(self) -> tuple[int, int, int]:
        """Return and reset (edges, bucket_ops, bytes) since the last call.

        Guarded against double-reset: a second call without intervening
        work returns zeros, and a rebuilt/reset bucket structure (ops
        counter going backwards) can never yield negative charges.
        """
        bucket_ops = max(0, self.buckets.ops - self._bucket_ops_seen)
        self._bucket_ops_seen = self.buckets.ops
        work = (self.step_edges, bucket_ops, self.step_bytes)
        self.step_edges = 0
        self.step_bytes = 0
        return work

    # -- introspection -----------------------------------------------------

    def state_array_lengths(self) -> dict[str, int]:
        """Length of every resident per-vertex array this rank holds.

        Used by the owned-local regression test (no array may scale with
        the global vertex count) and the memory benchmark.
        """
        return {
            "dist": int(self.dist.size),
            "in_epoch": int(self.in_epoch.size),
            "local_indptr": int(self.local_graph.indptr.size),
            "ghost_slots": int(self.ghosts.capacity) if self.ghosts is not None else 0,
            "announced": int(self.announced.size),
            "is_hub_local": (
                int(self.is_hub_local.size) if self.is_hub_local is not None else 0
            ),
        }

    def state_nbytes(self) -> int:
        """Resident bytes of this rank's owned-local state (graph included)."""
        total = (
            self.dist.nbytes
            + self.in_epoch.nbytes
            + self.owned.nbytes
            + self.local_graph.nbytes
            + self.announced.nbytes
        )
        if self.ghosts is not None:
            total += self.ghosts.nbytes
        if self.is_hub_local is not None:
            total += self.is_hub_local.nbytes
        if self.delegates is not None:
            d = self.delegates
            total += d.hubs.nbytes + d.indptr.nbytes + d.adj.nbytes + d.weight.nbytes
        return int(total)

    def graph_payload_nbytes(self) -> int:
        """Bytes of the partitioned input edges (adjacency + weights).

        This is the rank's share of the graph itself — resident in any
        layout — as opposed to the algorithm state the owned-local
        refactor shrinks.
        """
        total = self.local_graph.adj.nbytes + self.local_graph.weight.nbytes
        if self.delegates is not None:
            total += self.delegates.adj.nbytes + self.delegates.weight.nbytes
        return int(total)

    def export_final(self) -> dict:
        """Everything the driver needs after the last superstep.

        Rank state may live in a worker process, so the final read-out is
        a team call like any other phase.
        """
        return {
            "dist": self.dist,
            "nbytes": self.state_nbytes(),
            "graph_nbytes": self.graph_payload_nbytes(),
            "lengths": self.state_array_lengths(),
        }


@dataclass
class DistSSSPRun:
    """Everything a distributed run produced: answer, costs, measurements.

    Implements the :class:`repro.api.RunSummary` protocol (``result``,
    ``modeled_time``, ``comm``, ``report()``) shared by every engine.
    """

    engine = "dist1d"
    kernel = "sssp"

    result: SSSPResult
    config: SSSPConfig
    num_ranks: int
    delta: float
    simulated_seconds: float
    time_breakdown: dict[str, float]
    trace_summary: dict[str, float | int]
    work_imbalance: float
    machine_name: str
    # Wire bytes per superstep: the traffic wavefront (rises through the
    # dense middle buckets, decays in the tail).
    step_bytes: list[int] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def modeled_time(self) -> float:
        """Simulated seconds the cost model charged (RunSummary protocol)."""
        return self.simulated_seconds

    @property
    def comm(self) -> dict[str, float | int]:
        """Exact communication statistics (RunSummary protocol)."""
        return self.trace_summary

    def report(self) -> dict:
        """Uniform engine-agnostic run report (RunSummary protocol)."""
        return {
            "engine": self.engine,
            "kernel": self.kernel,
            "num_ranks": self.num_ranks,
            "modeled_time": self.modeled_time,
            "time_breakdown": dict(self.time_breakdown),
            "comm": dict(self.comm),
            "counters": self.result.counters.as_dict(),
            "work_imbalance": self.work_imbalance,
            "meta": dict(self.meta),
        }

    def teps(self, graph: CSRGraph) -> float:
        """Traversed edges per simulated second (Graph500 metric)."""
        if self.simulated_seconds <= 0:
            raise ValueError("run has no positive simulated time")
        return self.result.traversed_edges(graph) / self.simulated_seconds


def distributed_sssp(*args, **kwargs):
    """Removed legacy entry point for the 1-D ∆-stepping engine.

    Raises :class:`RuntimeError` pointing at ``repro.run`` — the unified
    kernel-registry facade with the same semantics and a uniform return
    shape.
    """
    legacy_removed(
        "distributed_sssp", 'repro.run(graph, source, kernel="sssp", engine="dist1d")'
    )


class _DistSSSPEngine:
    """The 1-D ∆-stepping engine, expressed on the superstep substrate.

    The driver (:func:`repro.engine.driver.run_superstep_engine`) owns the
    fabric, team, solve span and the vote → allreduce → step loop; this
    class owns what is ∆-stepping-specific — bucket votes, the epoch body
    (light phases, hub announcement rounds, the heavy round), and the
    :class:`DistSSSPRun` assembly.  The sequence of team and fabric calls
    is exactly the pre-substrate engine's, which the byte-exact
    equivalence fixtures pin.
    """

    name = "dist1d"
    vote_op = "min"

    def __init__(
        self,
        source: int,
        config: SSSPConfig,
        delta: float,
        partition: Partition1D,
        hubs: np.ndarray,
        threshold: int,
    ) -> None:
        self.source = source
        self.config = config
        self.delta = delta
        self.partition = partition
        self.hubs = hubs
        self.threshold = threshold
        self.hierarchical = config.hierarchical_aggregation
        self.metrics = MetricsRegistry()
        self.epochs = 0
        self.light_supersteps = 0
        self.heavy_rounds = 0
        # Per-rank min-bucket votes carried out of the last fused
        # finish_epoch call; the readout is pure, so the cached values
        # equal what a fresh loop-top gather would read.
        self._vote_cache: np.ndarray | None = None

    # -- driver hooks ------------------------------------------------------

    def build_ranks(self, graph: CSRGraph, num_ranks: int) -> list[_Rank]:
        owner = np.asarray(self.partition.owner_array)
        config = self.config
        ranks = [
            _Rank(
                rank=r,
                num_ranks=num_ranks,
                graph=graph,
                owned=self.partition.vertices_of(r),
                owner=owner,
                delegates=(
                    DelegateTable.build(graph, self.hubs, r, num_ranks)
                    if config.delegate_hubs
                    else None
                ),
                config=config,
                delta=self.delta,
            )
            for r in range(num_ranks)
        ]
        src_rank = ranks[int(owner[self.source])]
        src_local = int(src_rank.lmap.to_local(np.int64(self.source)))
        src_rank.dist[src_local] = 0.0
        src_rank.buckets.insert(np.array([src_local], dtype=np.int64))
        return ranks

    def votes(self, ctx: EngineContext) -> np.ndarray:
        # Termination allreduce: min over local minimum buckets.  After
        # the first epoch the votes ride out of the fused finish_epoch
        # call; the first gather (and any run without a step yet) reads
        # them directly.
        if self._vote_cache is not None:
            kmins = self._vote_cache
        else:
            kmins = np.array(ctx.team.call("local_min_bucket"))
        return np.where(np.isfinite(kmins), kmins, 1e300)

    def done(self, reduced: float) -> bool:
        return reduced >= 1e300

    # -- step internals ----------------------------------------------------

    def _exchange_halves(
        self, ctx: EngineContext, sent: list, finish: str, finish_args: tuple
    ) -> np.ndarray:
        """The communication tail shared by light and heavy supersteps.

        ``sent`` holds each rank's ``(pending, announcement_outbox)`` from
        the fused outbound call.  Runs the announcement broadcast round
        when any rank queued one (the skip condition is knowable without
        extra cost on a real machine: the flag rides on the preceding
        allreduce), then the plain-update reduce round, then the fused
        ``finish`` call whose per-rank ``(edges, bucket_ops, bytes, vote)``
        rows it charges to the cost model and returns.  The fabric call
        sequence — conditional exchange, exchange, charge — is exactly the
        unfused engine's.
        """
        team, fabric = ctx.team, ctx.fabric
        num_vertices = ctx.graph.num_vertices
        if (
            self.config.delegate_hubs
            and self.hubs.size
            and any(pending for pending, _ in sent)
        ):
            inboxes = fabric.exchange([outbox for _, outbox in sent])
            updates = team.call(
                "process_then_flush_updates",
                per_rank=[(m,) for m in inboxes],
                common=(num_vertices,),
                parallel=True,
                lazy=True,
            )
        else:
            updates = team.call(
                "process_then_flush_updates",
                per_rank=[(None,)] * ctx.num_ranks,
                common=(num_vertices,),
                parallel=True,
                lazy=True,
            )
        inboxes = fabric.exchange(updates)
        stats = np.array(
            team.call(
                finish,
                per_rank=[(m,) for m in inboxes],
                common=finish_args,
                parallel=True,
            ),
            dtype=np.float64,
        )
        fabric.charge_compute(
            edges=stats[:, 0], bucket_ops=stats[:, 1], bytes=stats[:, 2]
        )
        return stats

    def step(self, ctx: EngineContext, reduced: float) -> None:
        team, fabric, tracer = ctx.team, ctx.fabric, ctx.tracer
        metrics = self.metrics
        k = int(reduced)
        self.epochs += 1
        epochs = self.epochs
        num_vertices = ctx.graph.num_vertices
        first = True
        with tracer.span("epoch", cat="engine", epoch=epochs, bucket=k):
            # ---- light phases.  Each superstep: local drain/relax, then
            # the announcement broadcast phase (delegation only), then the
            # update exchange.  Updates are applied on arrival, so after
            # the exchange the only live state is bucket membership —
            # whose per-rank flag rides out of the fused finish call into
            # the continuation allreduce.  Each superstep is three fused
            # team calls (outbound, mid, inbound) where the unfused engine
            # paid up to seven; fabric calls and values are unchanged.
            while True:
                frontier_total = (
                    int(sum(team.call("bucket_live_count", common=(k,))))
                    if tracer.enabled
                    else 0
                )
                with tracer.span(
                    "superstep",
                    cat="engine",
                    phase="light",
                    epoch=epochs,
                    bucket=k,
                    frontier=frontier_total,
                ) as sp:
                    sent = team.call(
                        "light_superstep",
                        common=(k, num_vertices, first),
                        parallel=True,
                        lazy=True,
                    )
                    first = False
                    stats = self._exchange_halves(
                        ctx, sent, "finish_light_superstep", (k,)
                    )
                    edges = int(stats[:, 0].sum())
                    bucket_ops = int(stats[:, 1].sum())
                    step_bytes = int(stats[:, 2].sum())
                    critical_path, sum_of_ranks = team.take_step_timing()
                    sp.tag(
                        edges=edges,
                        bucket_ops=bucket_ops,
                        bytes=step_bytes,
                        critical_path=critical_path,
                        sum_of_ranks=sum_of_ranks,
                    )
                if tracer.enabled:
                    metrics.histogram("frontier_size").observe(frontier_total)
                    metrics.histogram("superstep_bytes").observe(step_bytes)
                self.light_supersteps += 1
                if not fabric.allreduce_any(stats[:, 3]):
                    break
            # ---- heavy phase: one announcement round (delegation only)
            # plus one update round; heavy results only land in later
            # buckets, so no iteration is needed.
            with tracer.span(
                "superstep", cat="engine", phase="heavy", epoch=epochs, bucket=k
            ) as sp:
                sent = team.call(
                    "heavy_superstep",
                    common=(num_vertices,),
                    parallel=True,
                    lazy=True,
                )
                stats = self._exchange_halves(ctx, sent, "finish_epoch", ())
                edges = int(stats[:, 0].sum())
                bucket_ops = int(stats[:, 1].sum())
                step_bytes = int(stats[:, 2].sum())
                self._vote_cache = stats[:, 3].copy()
                critical_path, sum_of_ranks = team.take_step_timing()
                sp.tag(
                    edges=edges,
                    bucket_ops=bucket_ops,
                    bytes=step_bytes,
                    critical_path=critical_path,
                    sum_of_ranks=sum_of_ranks,
                )
            if tracer.enabled:
                metrics.histogram("superstep_bytes").observe(step_bytes)
            self.heavy_rounds += 1

    def finalize(self, ctx: EngineContext, exports: list[dict]) -> DistSSSPRun:
        fabric, tracer = ctx.fabric, ctx.tracer
        metrics = self.metrics
        # ---- assemble the global answer ---------------------------------
        # Each rank's dist vector is owned-local, so the gather is one
        # direct scatter per rank — no dense per-rank indexing.
        # repro: index-space: dist[global], r.owned=global
        dist = np.full(ctx.graph.num_vertices, _INF, dtype=np.float64)
        for r, export in zip(ctx.ranks, exports):
            dist[r.owned] = export["dist"]
        result = SSSPResult(
            source=self.source,
            dist=dist,
            parent=derive_parents(ctx.graph, dist, self.source),
        )
        result.counters.add("epochs", self.epochs)
        result.counters.add("light_supersteps", self.light_supersteps)
        result.counters.add("heavy_rounds", self.heavy_rounds)
        result.counters.add(
            "edges_relaxed", int(fabric.work_per_rank.get("edges", np.zeros(1)).sum())
        )
        result.meta.update(
            algorithm="distributed_delta_stepping",
            delta=float(self.delta),
            num_ranks=ctx.num_ranks,
            hub_threshold=self.threshold,
            num_hubs=int(self.hubs.size),
            variant=self.config.variant_name(),
        )
        attach_fabric_outcome(result, fabric)
        if tracer.enabled:
            metrics.gauge("work_imbalance").set(fabric.compute_imbalance("edges"))
            metrics.gauge("comm_imbalance").set(fabric.trace.comm_imbalance())
            metrics.histogram("rank_sent_bytes").observe_many(
                fabric.trace.bytes_sent_per_rank
            )
            metrics.absorb_counters(result.counters)
            tracer.emit_metrics("engine", metrics.snapshot())
        return DistSSSPRun(
            result=result,
            config=self.config,
            num_ranks=ctx.num_ranks,
            delta=float(self.delta),
            simulated_seconds=fabric.clock.total,
            time_breakdown=fabric.clock.breakdown(),
            trace_summary=fabric.trace.summary(),
            work_imbalance=fabric.compute_imbalance("edges"),
            machine_name=ctx.machine.name,
            step_bytes=list(fabric.trace.step_bytes),
            meta={
                "partition": self.partition.kind,
                "executor": executor_meta(ctx.team),
                # The ghost cache is excluded from the dense-length gate:
                # it sizes with the vertices a rank actually relaxes
                # remotely (the halo), not with n.
                "rank_state": rank_state_meta(
                    exports, dense_exclude=("ghost_slots",)
                ),
            },
        )


def _distributed_sssp(
    graph: CSRGraph,
    source: int,
    num_ranks: int = 8,
    machine: MachineSpec | None = None,
    config: SSSPConfig | None = None,
    tracer: Tracer | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
) -> DistSSSPRun:
    """Run distributed ∆-stepping SSSP on a simulated machine.

    Returns a :class:`DistSSSPRun` whose ``result`` is bit-identical in
    distances to the sequential oracle (the engine is exact; the simulation
    only affects the modeled time).

    ``tracer`` (optional) receives the run's telemetry — epoch/superstep
    spans, per-exchange byte events, a metrics snapshot; ``None`` selects
    the no-op tracer, whose cost is one attribute check per superstep.

    ``faults`` (optional) injects a deterministic fault schedule at the
    fabric (drops with ack/retry, delays, stalls, degraded links); the
    distances stay bit-identical, only modeled time and the retransmission
    accounting change.

    ``executor`` (optional) selects the rank-execution backend —
    ``"serial"`` (default), ``"thread"``, ``"process"``, or a prebuilt
    :class:`~repro.simmpi.executor.RankExecutor`; ``workers`` sizes a
    string-specified pool.  Results are bit-identical across backends.
    """
    if config is None:
        config = SSSPConfig()
    check_source(graph, source)
    check_num_ranks(num_ranks)

    adaptive = config.delta is None
    delta = choose_delta(graph, config.delta_scale) if adaptive else config.delta
    delta = check_delta(delta, adaptive)
    partition = make_partition(graph, config.partition, num_ranks)

    if config.delegate_hubs:
        threshold = (
            config.hub_degree_threshold
            if config.hub_degree_threshold is not None
            else auto_hub_threshold(graph, num_ranks)
        )
        hubs = select_hubs(graph, threshold)
    else:
        threshold = 0
        hubs = np.empty(0, dtype=np.int64)

    impl = _DistSSSPEngine(source, config, delta, partition, hubs, threshold)
    return run_superstep_engine(
        graph,
        impl,
        num_ranks=num_ranks,
        machine=machine,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
    )
