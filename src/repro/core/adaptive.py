"""Adaptive ∆ selection.

∆-stepping's single tuning knob trades ordering work against wasted
relaxations: ∆ too small degenerates toward Dijkstra (many epochs, many
global synchronizations); ∆ too large degenerates toward Bellman-Ford
(vertices relaxed with non-final distances and re-relaxed later).  The
standard heuristic — used by the Graph500 reference and by every production
∆-stepping code — sets ∆ proportional to ``w_max / mean_degree``: a light
phase then relaxes about one out-edge per frontier vertex per sub-step.

The ∆-sensitivity experiment (F4) sweeps ∆ and checks this choice lands
near the bottom of the U-shaped cost curve.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["choose_batch_delta", "choose_delta"]

# Relaxations-per-vertex budget per light phase; 3-4 is the usual sweet spot
# for uniform weights (validated by the F4 sweep).
_DELTA_SCALE = 4.0

# Batched sweeps run their bucket machinery once for all lanes, so the
# per-epoch overhead that pushes single-root ∆ upward is amortized 64x —
# what remains is the cost of speculative relaxations, which a finer ∆
# avoids.  1/8 of the single-root ∆ sits at the bottom of the measured
# U-curve for 64-lane sweeps on Kronecker graphs (B1 protocol).
_BATCH_DELTA_FACTOR = 0.125


def choose_delta(graph: CSRGraph, scale: float = _DELTA_SCALE) -> float:
    """Pick ∆ from the weight distribution and mean degree.

    ``∆ = scale * w_max / mean_degree``, clamped to ``(0, w_max]``.  Falls
    back to 1.0 on degenerate graphs (no edges).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    m = graph.num_edges
    if m == 0 or graph.num_vertices == 0:
        return 1.0
    w_max = float(graph.weight.max())
    if w_max <= 0:
        raise ValueError("choose_delta requires positive weights")
    mean_degree = m / graph.num_vertices
    delta = scale * w_max / max(mean_degree, 1.0)
    return float(min(max(delta, 1e-9), w_max))


def choose_batch_delta(graph: CSRGraph, scale: float = _DELTA_SCALE) -> float:
    """Pick ∆ for a batched multi-root sweep (``sssp_batch``).

    The per-lane fixed point is the exact shortest distance for any ∆
    (min over float64 path sums is order-free), so a batched sweep is
    free to bucket more finely than the single-root heuristic without
    perturbing results — and it should: epoch overhead is shared by all
    lanes, while speculation cost is paid per lane.
    """
    return float(max(choose_delta(graph, scale) * _BATCH_DELTA_FACTOR, 1e-9))
