"""Configuration of the distributed SSSP engine.

Every optimization the ablation experiment (F3) toggles is a field here, so
a variant is fully described by one :class:`SSSPConfig` value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SSSPConfig"]

_PARTITIONS = ("block", "edge_balanced", "hashed")


@dataclass(frozen=True)
class SSSPConfig:
    """Knobs of the distributed ∆-stepping engine.

    Attributes:
        delta: bucket width; ``None`` selects it adaptively from the graph.
        delta_scale: multiplier for the adaptive choice (see
            :func:`repro.core.adaptive.choose_delta`).
        partition: vertex-partition strategy (``block``, ``edge_balanced``,
            ``hashed``).
        coalesce: per-destination dedup-min of outgoing updates plus the
            tentative-distance filter cache (suppress updates that cannot
            improve the receiver's value).
        delegate_hubs: split hub adjacency lists across all ranks; a hub
            relaxation becomes a P-message broadcast instead of a
            degree-sized update storm from one rank.
        hub_degree_threshold: vertices with out-degree >= threshold are
            delegated; ``None`` derives it from the graph and rank count.
        fuse_buckets: drain the local bucket to a fixpoint (several local
            sub-iterations) before each global exchange, cutting the number
            of global synchronizations per epoch.
        fusion_cap: bound on local sub-iterations per exchange (safety
            valve; 1 is equivalent to ``fuse_buckets=False``).
        compressed_indices: send vertex ids as uint32 on the wire when the
            graph is small enough (distances stay float64 — lossless).
        hierarchical_aggregation: route inter-supernode traffic through
            supernode leaders (gather/exchange/scatter) instead of direct
            rank-to-rank messages; bounds per-step message fan-out at the
            cost of forwarding inter-supernode bytes twice.
    """

    delta: float | None = None
    delta_scale: float = 4.0
    partition: str = "edge_balanced"
    coalesce: bool = True
    delegate_hubs: bool = True
    hub_degree_threshold: int | None = None
    fuse_buckets: bool = True
    fusion_cap: int = 64
    compressed_indices: bool = True
    hierarchical_aggregation: bool = False

    def __post_init__(self) -> None:
        if self.partition not in _PARTITIONS:
            raise ValueError(f"partition must be one of {_PARTITIONS}, got {self.partition!r}")
        if self.delta is not None and self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.delta_scale <= 0:
            raise ValueError("delta_scale must be positive")
        if self.fusion_cap < 1:
            raise ValueError("fusion_cap must be >= 1")
        if self.hub_degree_threshold is not None and self.hub_degree_threshold < 1:
            raise ValueError("hub_degree_threshold must be >= 1")

    @classmethod
    def optimized(cls) -> "SSSPConfig":
        """The full optimization stack (the paper's configuration)."""
        return cls()

    @classmethod
    def baseline(cls) -> "SSSPConfig":
        """Reference-style configuration: everything off, naive partition."""
        return cls(
            partition="block",
            coalesce=False,
            delegate_hubs=False,
            fuse_buckets=False,
            compressed_indices=False,
        )

    def without(self, optimization: str) -> "SSSPConfig":
        """Return a copy with one named optimization disabled (ablation)."""
        toggles = {
            "coalesce": {"coalesce": False},
            "delegate_hubs": {"delegate_hubs": False},
            "fuse_buckets": {"fuse_buckets": False},
            "compressed_indices": {"compressed_indices": False},
            "edge_balanced": {"partition": "block"},
        }
        if optimization not in toggles:
            raise ValueError(f"unknown optimization {optimization!r}; options: {sorted(toggles)}")
        return replace(self, **toggles[optimization])

    def variant_name(self) -> str:
        """Short human-readable tag for report rows."""
        if self == SSSPConfig.baseline():
            return "baseline"
        off = [
            name
            for name, flag in (
                ("coalesce", self.coalesce),
                ("delegate", self.delegate_hubs),
                ("fusion", self.fuse_buckets),
                ("compress", self.compressed_indices),
            )
            if not flag
        ]
        if self.partition != "edge_balanced":
            off.append(f"part={self.partition}")
        return "optimized" if not off else "optimized -" + " -".join(off)
