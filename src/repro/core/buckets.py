"""The ∆-stepping bucket structure.

Vertices are grouped by ``floor(dist / delta)``.  The structure is lazy, the
way high-performance implementations are: insertions append vertex ids to a
per-bucket list of numpy arrays without removing stale entries; staleness is
resolved when a bucket is drained, by re-checking each entry's *current*
bucket index against the bucket it sits in.  This avoids per-insert random
access entirely — inserts are O(1) array appends, drains are one vectorized
filter.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BucketQueue"]


class BucketQueue:
    """Lazy bucket priority structure over tentative distances."""

    __slots__ = ("delta", "_buckets", "_dist", "ops")

    def __init__(self, dist: np.ndarray, delta: float) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self._dist = dist  # shared, live view of the algorithm's distances
        self._buckets: dict[int, list[np.ndarray]] = {}
        self.ops = 0  # bucket maintenance operations, charged to the cost model

    def bucket_index(self, vertices: np.ndarray) -> np.ndarray:
        """Current bucket of each vertex; -1 for non-finite distances."""
        d = self._dist[vertices]
        finite = np.isfinite(d)
        out = np.full(d.shape, -1, dtype=np.int64)
        out[finite] = np.floor_divide(d[finite], self.delta).astype(np.int64)
        return out

    def insert(self, vertices: np.ndarray) -> None:
        """Append vertices to the buckets their current distances select."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return
        idx = self.bucket_index(vertices)
        self.ops += int(vertices.size)
        if np.unique(idx).size == 1:
            self._buckets.setdefault(int(idx[0]), []).append(vertices)
            return
        order = np.argsort(idx, kind="stable")
        sidx = idx[order]
        sv = vertices[order]
        cuts = np.flatnonzero(np.diff(sidx)) + 1
        for chunk_idx, chunk in zip(
            sidx[np.concatenate(([0], cuts))], np.split(sv, cuts)
        ):
            self._buckets.setdefault(int(chunk_idx), []).append(chunk)

    def min_bucket(self) -> int | None:
        """Smallest bucket index that may contain live entries."""
        while self._buckets:
            k = min(self._buckets)
            if any(a.size for a in self._buckets[k]):
                return k
            del self._buckets[k]
        return None

    def drain(self, k: int, exclude: np.ndarray | None = None) -> np.ndarray:
        """Remove and return the *live* members of bucket ``k``.

        Live means: finite distance whose current bucket index is still
        ``k``, not in ``exclude`` (a boolean mask of vertices already
        processed this epoch), deduplicated.  Stale entries are discarded
        for good.
        """
        parts = self._buckets.pop(k, [])
        if not parts:
            return np.empty(0, dtype=np.int64)
        cand = np.unique(np.concatenate(parts))
        self.ops += int(sum(a.size for a in parts))
        live = np.isfinite(self._dist[cand])
        live &= self.bucket_index(cand) == k
        if exclude is not None:
            live &= ~exclude[cand]
        return cand[live]

    def min_live_bucket(self) -> int | None:
        """Smallest bucket with at least one live entry; drops dead buckets.

        A bucket can hold only stale entries (vertices whose distance
        improved into a later... earlier bucket is impossible, so: into a
        *different* bucket since insertion).  Processing such a bucket would
        waste a whole epoch of global synchronization, so it is skipped —
        the skip scan is charged as bucket maintenance work.
        """
        while self._buckets:
            k = min(self._buckets)
            parts = self._buckets[k]
            size = int(sum(a.size for a in parts))
            if size and self.live_count(k) > 0:
                return k
            self.ops += size
            del self._buckets[k]
        return None

    def live_count(self, k: int) -> int:
        """Number of live entries in bucket ``k`` without draining it."""
        parts = self._buckets.get(k, [])
        if not parts:
            return 0
        cand = np.unique(np.concatenate(parts))
        live = np.isfinite(self._dist[cand])
        live &= self.bucket_index(cand) == k
        return int(np.count_nonzero(live))

    def empty(self) -> bool:
        return self.min_bucket() is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = {k: sum(a.size for a in v) for k, v in sorted(self._buckets.items())}
        return f"BucketQueue(delta={self.delta}, raw_sizes={sizes})"
