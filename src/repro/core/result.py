"""SSSP result container and shortest-path-tree derivation.

Every SSSP implementation in this library — baselines included — returns an
:class:`SSSPResult` so the validation layer and the benchmark harness treat
them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.timing import Counters

__all__ = ["SSSPResult", "derive_parents", "UNREACHABLE_PARENT"]

UNREACHABLE_PARENT = np.int64(-1)


@dataclass
class SSSPResult:
    """Distances and a shortest-path tree from one source.

    ``dist[v]`` is ``inf`` for unreachable vertices; ``parent[v]`` is ``-1``
    for unreachable vertices and ``source`` for the source itself (the
    Graph500 convention: the root is its own parent).
    """

    source: int
    dist: np.ndarray
    parent: np.ndarray
    counters: Counters = field(default_factory=Counters)
    # Algorithm-specific extras (epochs, phases, delta used, ...).
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.dist = np.ascontiguousarray(self.dist, dtype=np.float64)
        self.parent = np.ascontiguousarray(self.parent, dtype=np.int64)
        if self.dist.shape != self.parent.shape:
            raise ValueError("dist/parent shape mismatch")
        if not (0 <= self.source < self.dist.size):
            raise ValueError(f"source {self.source} out of range")

    @property
    def num_vertices(self) -> int:
        return int(self.dist.size)

    @property
    def reached(self) -> np.ndarray:
        """Boolean mask of vertices with a finite distance."""
        return np.isfinite(self.dist)

    @property
    def num_reached(self) -> int:
        return int(np.count_nonzero(self.reached))

    def traversed_edges(self, graph: CSRGraph) -> int:
        """Graph500 TEPS numerator: undirected input edges with at least one
        endpoint reached (directed CSR edges whose source is reached, / 2).
        """
        reached = self.reached
        return int(graph.out_degree[reached].sum()) // 2

    def validate(self, graph: CSRGraph):
        """Run the Graph500 spec checks; returns a ``ValidationReport``.

        The uniform hook every kernel-typed result implements — same call
        whether the run computed distances, a BFS tree, labels, ranks or
        coreness.
        """
        # Imported here, not at module scope: the graph500 package imports
        # result containers, so a top-level import would be circular.
        from repro.graph500.validation import validate_sssp

        return validate_sssp(graph, self)


def derive_parents(graph: CSRGraph, dist: np.ndarray, source: int) -> np.ndarray:
    """Derive a valid shortest-path tree from converged distances.

    For every reached vertex ``v != source`` there must exist an edge
    ``(u, v)`` with ``dist[u] + w(u, v) == dist[v]`` (float-exact, because
    ``dist[v]`` was produced by that very addition); pick any such ``u``.
    Requires strictly positive weights (guaranteed by the Graph500 spec's
    (0, 1] weight distribution), which makes the tree acyclic: parents
    strictly decrease the distance.

    One vectorized pass over all edges — this is also the derivation an
    extreme-scale code performs locally per rank after the relaxation ends.
    """
    if np.any(graph.weight <= 0):
        raise ValueError("derive_parents requires strictly positive edge weights")
    n = graph.num_vertices
    dist = np.asarray(dist, dtype=np.float64)
    if dist.shape != (n,):
        raise ValueError("dist length must equal num_vertices")
    parent = np.full(n, UNREACHABLE_PARENT, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.out_degree)
    dst = graph.adj
    tight = np.isfinite(dist[src]) & (dist[src] + graph.weight == dist[dst])
    # Last write wins; any tight edge is a valid tree edge.
    parent[dst[tight]] = src[tight]
    parent[source] = source
    unreached = ~np.isfinite(dist)
    parent[unreached] = UNREACHABLE_PARENT
    return parent
