"""The paper's primary contribution: bucketed ∆-stepping SSSP, shared-memory
and distributed, with the extreme-scale optimization stack (hub delegation,
message coalescing, bucket fusion, adaptive ∆).

``delta_stepping``/``distributed_sssp``/``distributed_sssp_2d`` are retired
stubs that raise ``RuntimeError`` pointing at :func:`repro.run`.
"""

from repro.core.adaptive import choose_delta
from repro.core.config import SSSPConfig
from repro.core.delta_stepping import delta_stepping
from repro.core.dist_sssp import DistSSSPRun, distributed_sssp
from repro.core.result import SSSPResult, derive_parents
from repro.core.twod_engine import TwoDRun, distributed_sssp_2d

__all__ = [
    "DistSSSPRun",
    "SSSPConfig",
    "SSSPResult",
    "TwoDRun",
    "choose_delta",
    "delta_stepping",
    "derive_parents",
    "distributed_sssp",
    "distributed_sssp_2d",
]
