"""2-D (checkerboard) distributed SSSP engine.

The 1-D engine's alltoallv has up to P-1 partners per rank per superstep.
At 10^5 ranks that fan-out is untenable, which is why record-scale Graph500
codes decompose the *adjacency matrix* over an R x C process grid: edge
(u, v) lives at grid position (grid_row(owner(u)), grid_col(owner(v))), so
each superstep needs only

* a **row broadcast** of the active frontier (C-1 partners), and
* a **column reduce** of relaxation candidates toward vertex owners
  (R-1 partners),

≈ 2·sqrt(P) partners total.  The price is frontier replication across grid
rows and candidate duplication across grid columns.

The relaxation schedule here is frontier (chaotic) relaxation — the 2-D
scheme's communication structure is what this module exists to measure;
the ∆-stepping ordering lives in the 1-D engine.  Answers are exact either
way (tests compare both against Dijkstra).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._deprecation import legacy_removed
from repro.core.coalescing import dedup_min
from repro.core.config import SSSPConfig
from repro.core.relaxation import frontier_edges, scatter_min
from repro.core.result import SSSPResult, derive_parents
from repro.engine.driver import (
    EngineContext,
    attach_fabric_outcome,
    executor_meta,
    rank_state_meta,
    run_superstep_engine,
)
from repro.engine.validation import (
    check_grid,
    check_source,
    make_contiguous_partition,
)
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer
from repro.partition import block1d, make_grid
from repro.simmpi.executor import RankExecutor
from repro.simmpi.fabric import Message
from repro.simmpi.faults import FaultPlan, FaultSpec
from repro.simmpi.machine import MachineSpec

__all__ = ["distributed_sssp_2d", "TwoDRun"]

_INF = np.inf


@dataclass
class TwoDRun:
    """Outcome of a 2-D engine run.

    Implements the :class:`repro.api.RunSummary` protocol (``result``,
    ``modeled_time``, ``comm``, ``report()``) shared by every engine.
    """

    engine = "dist2d"
    kernel = "sssp"

    result: SSSPResult
    rows: int
    cols: int
    simulated_seconds: float
    time_breakdown: dict[str, float]
    trace_summary: dict[str, float | int]
    max_partners_per_rank: int
    meta: dict = field(default_factory=dict)

    @property
    def num_ranks(self) -> int:
        return self.rows * self.cols

    @property
    def modeled_time(self) -> float:
        """Simulated seconds the cost model charged (RunSummary protocol)."""
        return self.simulated_seconds

    @property
    def comm(self) -> dict[str, float | int]:
        """Exact communication statistics (RunSummary protocol)."""
        return self.trace_summary

    def report(self) -> dict:
        """Uniform engine-agnostic run report (RunSummary protocol)."""
        return {
            "engine": self.engine,
            "kernel": self.kernel,
            "num_ranks": self.num_ranks,
            "modeled_time": self.modeled_time,
            "time_breakdown": dict(self.time_breakdown),
            "comm": dict(self.comm),
            "counters": self.result.counters.as_dict(),
            "work_imbalance": 1.0,
            "meta": dict(self.meta),
        }

    def teps(self, graph: CSRGraph) -> float:
        if self.simulated_seconds <= 0:
            raise ValueError("run has no positive simulated time")
        return self.result.traversed_edges(graph) / self.simulated_seconds


class _GridRank:
    """One rank of the R x C grid: an edge block plus (maybe) owned vertices.

    State is *row-local*: every per-vertex array spans only this grid row's
    contiguous source range ``[row_lo, row_hi)`` (the union of the owned
    ranges of the row's ``cols`` ranks), never the full vertex set.  That is
    enough because

    * frontier sources are always row-replicated vertices (in range),
    * relaxation *targets* this rank keeps are its own vertices (in range) —
      remote column targets are routed to their owners and their replica
      entries were provably never written under the dense layout (a column
      target inside the row range is owned by this very rank), so dropping
      them loses no information and changes no message.
    """

    def __init__(
        self,
        rank: int,
        rows: int,
        cols: int,
        graph: CSRGraph,
        owner: np.ndarray,
        owned: np.ndarray,
        row_range: tuple[int, int],
        coalesce: bool = True,
        vertex_dtype: np.dtype = np.int64,
        adj_cols: np.ndarray | None = None,
    ) -> None:
        self.rank = rank
        # repro: shared-ro: self._owner
        self._owner = owner
        self.coalesce = coalesce
        self.vertex_dtype = vertex_dtype
        self.grid_row = rank // cols
        self.grid_col = rank % cols
        self.rows = rows
        self.cols = cols
        # "local" for a grid rank means *row-local*: global id − row_lo.
        # repro: index-space: self.dist_row[local], self.frontier=local
        # repro: index-space: self.owned=global, self._owner[global]
        self.owned = owned
        self.row_lo, self.row_hi = row_range
        self.own_lo = int(owned[0]) if owned.size else 0
        self.own_hi = int(owned[-1]) + 1 if owned.size else 0
        # Edge block: sources owned by ranks in this grid row (a contiguous
        # slice of the global CSR, renumbered to row-local rows), targets
        # owned by ranks in this grid column (global ids, filtered).  The
        # global CSR is (src, dst)-sorted, so slicing + masking preserves
        # the exact edge order the dense build produced.
        start, stop = graph.indptr[self.row_lo], graph.indptr[self.row_hi]
        adj = graph.adj[start:stop]
        # ``adj_cols`` (the grid column of every target in this row's edge
        # slice) is shared by the row's ``cols`` ranks; the driver computes
        # it once per grid row instead of once per rank.
        if adj_cols is None:
            adj_cols = owner[adj] % cols
        keep = adj_cols == self.grid_col
        kept_upto = np.zeros(adj.size + 1, dtype=np.int64)
        np.cumsum(keep, out=kept_upto[1:])
        self.block = CSRGraph(
            kept_upto[graph.indptr[self.row_lo : self.row_hi + 1] - start],
            adj[keep],
            graph.weight[start:stop][keep],
            self.row_hi - self.row_lo,
        )
        # Authoritative distances for owned vertices; replicated frontier
        # distances for the rest of this grid row's source range.
        self.dist_row = np.full(self.row_hi - self.row_lo, _INF, dtype=np.float64)
        # Row-local ids of newly improved owned vertices.  ``_frontier_segs``
        # counts the appended pieces: a single piece is always sorted and
        # duplicate-free (scatter_min winners, or one sender's broadcast),
        # letting the consumers skip the sort/unique.
        self.frontier = np.empty(0, dtype=np.int64)
        self._frontier_segs = 0
        self.step_edges = 0
        self.step_bytes = 0

    # -- phase 1: frontier broadcast along the grid row --------------------

    def broadcast_frontier(self) -> dict[int, Message]:
        """Send owned active vertices to the other ranks of this grid row."""
        out: dict[int, Message] = {}
        if self.frontier.size == 0:
            return out
        if self._frontier_segs > 1:
            # Pieces appended by separate _apply calls may overlap (a vertex
            # can improve more than once between broadcasts).
            self.frontier = np.unique(self.frontier)
        self._frontier_segs = 1
        msg = Message(
            vertex=(self.frontier + self.row_lo).astype(self.vertex_dtype, copy=False),
            dist=self.dist_row[self.frontier],
        )
        for c in range(self.cols):
            if c != self.grid_col:
                dst = self.grid_row * self.cols + c
                out[dst] = msg
                self.step_bytes += msg.nbytes
        return out

    def receive_frontier(self, msg: Message | None) -> None:
        if msg is None:
            return
        v = msg["vertex"].astype(np.int64, copy=False) - self.row_lo
        np.minimum.at(self.dist_row, v, msg["dist"])
        self.frontier = np.concatenate([self.frontier, v])
        self._frontier_segs += 1

    # -- phase 2: local relax + column reduce ------------------------------

    def relax_block(self) -> dict[int, Message]:
        """Relax the block's edges out of the frontier; route candidates."""
        # repro: index-space: targets=global, dst=global
        if self.frontier.size == 0:
            return {}
        # At this point the frontier is the broadcast-deduplicated owned
        # piece plus one piece per row partner — pieces are sorted and
        # mutually disjoint (vertex ownership partitions the row), so a
        # plain sort reproduces ``np.unique`` exactly, and a lone piece
        # needs nothing at all.
        if self._frontier_segs > 1:
            frontier = np.sort(self.frontier)
        else:
            frontier = self.frontier
        self.frontier = np.empty(0, dtype=np.int64)
        self._frontier_segs = 0
        src, dst, w = frontier_edges(self.block, frontier)
        self.step_edges += int(src.size)
        if src.size == 0:
            return {}
        cands = self.dist_row[src] + w
        if self.coalesce:
            # Send-side coalescing: one minimum per target, and candidates
            # that cannot improve our own replica are dead already.  Only
            # in-range targets have a replica to check — and an in-range
            # column target is necessarily owned by this rank; remote ones
            # had a permanently-inf dense entry, i.e. were always kept.
            targets, best = dedup_min(dst, cands)
            keep = np.ones(targets.size, dtype=bool)
            inrow = (targets >= self.row_lo) & (targets < self.row_hi)
            keep[inrow] = best[inrow] < self.dist_row[targets[inrow] - self.row_lo]
            targets, best = targets[keep], best[keep]
        else:
            targets, best = dst, cands
        if targets.size == 0:
            return {}
        mine = (targets >= self.own_lo) & (targets < self.own_hi)
        self._apply(targets[mine] - self.row_lo, best[mine])
        rem_t, rem_b = targets[~mine], best[~mine]
        if rem_t.size == 0:
            return {}
        # Owners of these targets sit in this grid column by construction.
        return self._route_column(rem_t, rem_b)

    def _route_column(self, targets: np.ndarray, best: np.ndarray) -> dict[int, Message]:
        # repro: wire-path
        # repro: index-space: targets=global
        # Per-destination record order is wire byte order: stable sort only.
        out: dict[int, Message] = {}
        owner_rank = self._owner[targets]
        first = int(owner_rank[0])
        if owner_rank.size == 1 or not np.any(owner_rank != first):
            # Single destination (common once the column has few owners):
            # skip the sort/split machinery.
            msg = Message(
                vertex=targets.astype(self.vertex_dtype, copy=False), dist=best
            )
            self.step_bytes += msg.nbytes
            out[first] = msg
            return out
        order = np.argsort(owner_rank, kind="stable")
        so, st, sb = owner_rank[order], targets[order], best[order]
        cuts = np.flatnonzero(np.diff(so)) + 1
        bounds = np.concatenate(([0], cuts, [so.size]))
        for i in range(bounds.size - 1):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            msg = Message(
                vertex=st[lo:hi].astype(self.vertex_dtype, copy=False),
                dist=sb[lo:hi],
            )
            self.step_bytes += msg.nbytes
            out[int(so[lo])] = msg
        return out

    def receive_candidates(self, msg: Message | None) -> None:
        if msg is None:
            return
        self._apply(
            msg["vertex"].astype(np.int64, copy=False) - self.row_lo, msg["dist"]
        )

    def _apply(self, targets_local: np.ndarray, cands: np.ndarray) -> None:
        """Apply owned candidates (row-local ids) and extend the frontier."""
        improved = scatter_min(self.dist_row, targets_local, cands)
        if improved.size:
            self.frontier = np.concatenate([self.frontier, improved])
            self._frontier_segs += 1

    def take_step_work(self) -> tuple[int, int]:
        work = (self.step_edges, self.step_bytes)
        self.step_edges = 0
        self.step_bytes = 0
        return work

    def frontier_size(self) -> int:
        return int(self.frontier.size)

    # -- fused round phases (one team call per exchange side) ---------------

    def receive_and_relax(self, msg: Message | None) -> dict[int, Message]:
        """Apply the row-broadcast inbox, then relax the block — the whole
        middle of a round as one team call.  Returns the column-reduce
        outbox for the second exchange."""
        self.receive_frontier(msg)
        return self.relax_block()

    def finish_round(self, msg: Message | None) -> tuple:
        """Inbound tail of a round: apply candidates, read out work.

        Returns ``(edges, bytes, frontier_size)``; the driver charges the
        cost model from the first two and caches the third for the
        loop-top allreduce — the readout is pure, so per-round evaluation
        matches the unfused call order.
        """
        self.receive_candidates(msg)
        edges, nbytes = self.take_step_work()
        return (float(edges), float(nbytes), float(self.frontier.size))

    def export_final(self) -> dict:
        """Final per-rank payload gathered by the driver after the loop."""
        return {
            "owned_dist": self.dist_row[self.owned - self.row_lo],
            "nbytes": self.state_nbytes(),
            "graph_nbytes": self.graph_payload_nbytes(),
            "lengths": self.state_array_lengths(),
        }

    def state_array_lengths(self) -> dict[str, int]:
        """Length of every resident per-vertex array this rank holds."""
        return {
            "dist_row": int(self.dist_row.size),
            "block_indptr": int(self.block.indptr.size),
        }

    def state_nbytes(self) -> int:
        """Resident bytes of this rank's row-local state (block included)."""
        return int(self.dist_row.nbytes + self.owned.nbytes + self.block.nbytes)

    def graph_payload_nbytes(self) -> int:
        """Bytes of the rank's block of input edges (adjacency + weights)."""
        return int(self.block.adj.nbytes + self.block.weight.nbytes)


def distributed_sssp_2d(*args, **kwargs):
    """Removed legacy entry point for the 2-D engine.

    Raises :class:`RuntimeError` pointing at ``repro.run`` — the unified
    kernel-registry facade with the same semantics and a uniform return
    shape.
    """
    legacy_removed(
        "distributed_sssp_2d",
        'repro.run(graph, source, kernel="sssp", engine="dist2d")',
    )


def _distributed_sssp_2d(
    graph: CSRGraph,
    source: int,
    num_ranks: int = 16,
    machine: MachineSpec | None = None,
    grid: tuple[int, int] | None = None,
    tracer: Tracer | None = None,
    config: SSSPConfig | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
) -> TwoDRun:
    """Exact SSSP with 2-D frontier relaxation on a process grid.

    ``grid`` defaults to the most-square factorization of ``num_ranks``.
    ``tracer`` (optional) receives round spans and per-exchange events.
    ``faults`` (optional) injects a deterministic fault schedule at the
    fabric; answers are unchanged, only modeled time and retry accounting.
    ``executor``/``workers`` select the rank-execution backend (serial,
    thread, or process) that runs the per-rank compute phases; results are
    bit-identical across backends because ranks share no mutable state and
    every exchange gathers in canonical rank order.

    ``config`` (optional) applies the :class:`SSSPConfig` knobs that are
    meaningful to a frontier engine: ``partition`` (vertex ownership),
    ``coalesce`` (send-side dedup-min + replica filter) and
    ``compressed_indices`` (uint32 vertex ids on the wire).  ``delta`` and
    the bucket knobs do not apply — this engine relaxes the whole frontier
    chaotically and has no buckets (the ∆-stepping ordering lives in the
    1-D engine); they are ignored *by design*, not silently: the run's
    ``meta['variant']`` records the applied configuration.  ``config=None``
    reproduces the historical behavior exactly (block partition, coalescing
    on, int64 wire ids).
    """
    check_source(graph, source)
    rows, cols = grid if grid is not None else make_grid(num_ranks)
    check_grid(rows, cols, num_ranks)
    impl = _TwoDEngine(source, rows, cols, config)
    return run_superstep_engine(
        graph,
        impl,
        num_ranks=num_ranks,
        machine=machine,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
    )


class _TwoDEngine:
    """The 2-D checkerboard engine, expressed on the superstep substrate.

    The driver owns the fabric, team, solve span and the vote → allreduce
    → step loop; this class owns the grid-specific parts — the frontier
    size vote, the round body (row broadcast, block relaxation, column
    reduce), and the :class:`TwoDRun` assembly.  The sequence of team and
    fabric calls is exactly the pre-substrate engine's, which the
    byte-exact equivalence fixtures pin.
    """

    name = "dist2d"
    hierarchical = False
    vote_op = "sum"

    def __init__(
        self,
        source: int,
        rows: int,
        cols: int,
        config: SSSPConfig | None,
    ) -> None:
        self.source = source
        self.rows = rows
        self.cols = cols
        self.config = config
        self.part = None
        self.rounds = 0
        self.max_partners = 0
        # Per-rank frontier sizes carried out of the last fused
        # finish_round call; the readout is pure, so the cached values
        # equal what a fresh loop-top gather would read.
        self._vote_cache: np.ndarray | None = None

    # -- driver hooks ------------------------------------------------------

    def build_ranks(self, graph: CSRGraph, num_ranks: int) -> list[_GridRank]:
        n = graph.num_vertices
        rows, cols = self.rows, self.cols
        config = self.config
        if config is None:
            part = block1d(n, num_ranks)
            coalesce = True
            vertex_dtype = np.int64
        else:
            # The grid-column owner mapping relies on owned ranges being
            # contiguous vertex-id intervals.
            part = make_contiguous_partition(
                graph, config.partition, num_ranks, "the 2-D engine"
            )
            coalesce = config.coalesce
            small_enough = n <= int(np.iinfo(np.uint32).max)
            vertex_dtype = (
                np.uint32 if (config.compressed_indices and small_enough) else np.int64
            )
        self.part = part
        owner = np.asarray(part.owner_array)
        owned_arrays = [part.vertices_of(r) for r in range(num_ranks)]
        # Each grid row's source range: the union of its ranks' (contiguous,
        # ordered) owned ranges.  Row-local state spans exactly this range.
        row_ranges: list[tuple[int, int]] = []
        for gr in range(rows):
            in_row = [a for a in owned_arrays[gr * cols : (gr + 1) * cols] if a.size]
            if in_row:
                row_ranges.append((int(in_row[0][0]), int(in_row[-1][-1]) + 1))
            else:
                row_ranges.append((0, 0))
        # The grid column of every edge target, computed once per grid row
        # and shared by the row's ranks (each would otherwise redo the same
        # owner-gather over the row's full edge slice).
        owner_col = owner % cols
        row_adj_cols = [
            owner_col[graph.adj[graph.indptr[lo] : graph.indptr[hi]]]
            for lo, hi in row_ranges
        ]
        ranks = [
            _GridRank(
                r,
                rows,
                cols,
                graph,
                owner,
                owned_arrays[r],
                row_ranges[r // cols],
                coalesce=coalesce,
                vertex_dtype=vertex_dtype,
                adj_cols=row_adj_cols[r // cols],
            )
            for r in range(num_ranks)
        ]
        src_rank = ranks[int(owner[self.source])]
        src_rank.dist_row[self.source - src_rank.row_lo] = 0.0
        src_rank.frontier = np.array(
            [self.source - src_rank.row_lo], dtype=np.int64
        )
        return ranks

    def votes(self, ctx: EngineContext) -> np.ndarray:
        if self._vote_cache is not None:
            return self._vote_cache
        return np.array(ctx.team.call("frontier_size"), dtype=np.float64)

    def done(self, reduced: float) -> bool:
        return reduced == 0

    def step(self, ctx: EngineContext, total_active: float) -> None:
        team, fabric = ctx.team, ctx.fabric
        self.rounds += 1
        with ctx.tracer.span(
            "round",
            cat="engine",
            phase="frontier",
            epoch=self.rounds,
            frontier=int(total_active),
        ) as sp:
            # Each round is three fused team calls (broadcast, middle,
            # inbound tail) where the unfused engine paid six; fabric
            # calls and values are unchanged.
            # Phase 1: row broadcast of owned frontiers.
            bcast = team.call("broadcast_frontier", parallel=True, lazy=True)
            self.max_partners = max(
                self.max_partners, max((len(o) for o in bcast), default=0)
            )
            inboxes = fabric.exchange(bcast)
            # Phase 2: apply the broadcast, relax the block, column-reduce
            # candidates to owners — one fused call per rank.
            reduce_out = team.call(
                "receive_and_relax",
                per_rank=[(m,) for m in inboxes],
                parallel=True,
                lazy=True,
            )
            self.max_partners = max(
                self.max_partners, max((len(o) for o in reduce_out), default=0)
            )
            inboxes = fabric.exchange(reduce_out)
            stats = np.array(
                team.call(
                    "finish_round",
                    per_rank=[(m,) for m in inboxes],
                    parallel=True,
                ),
                dtype=np.float64,
            )
            fabric.charge_compute(edges=stats[:, 0], bytes=stats[:, 1])
            self._vote_cache = stats[:, 2].copy()
            critical_path, sum_of_ranks = team.take_step_timing()
            sp.tag(
                edges=int(stats[:, 0].sum()),
                bytes=int(stats[:, 1].sum()),
                critical_path=critical_path,
                sum_of_ranks=sum_of_ranks,
            )

    def finalize(self, ctx: EngineContext, exports: list[dict]) -> TwoDRun:
        fabric = ctx.fabric
        dist = np.full(ctx.graph.num_vertices, _INF, dtype=np.float64)
        for r, export in zip(ctx.ranks, exports):
            dist[r.owned] = export["owned_dist"]
        result = SSSPResult(
            source=self.source,
            dist=dist,
            parent=derive_parents(ctx.graph, dist, self.source),
        )
        result.counters.add("rounds", self.rounds)
        result.counters.add(
            "edges_relaxed", int(fabric.work_per_rank.get("edges", np.zeros(1)).sum())
        )
        result.meta.update(
            algorithm="distributed_sssp_2d",
            grid=f"{self.rows}x{self.cols}",
            partition=self.part.kind,
        )
        if self.config is not None:
            result.meta["variant"] = self.config.variant_name()
        attach_fabric_outcome(result, fabric)
        return TwoDRun(
            result=result,
            rows=self.rows,
            cols=self.cols,
            simulated_seconds=fabric.clock.total,
            time_breakdown=fabric.clock.breakdown(),
            trace_summary=fabric.trace.summary(),
            max_partners_per_rank=self.max_partners,
            meta={
                "executor": executor_meta(ctx.team),
                "rank_state": rank_state_meta(exports),
            },
        )
