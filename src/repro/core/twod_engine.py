"""2-D (checkerboard) distributed SSSP engine.

The 1-D engine's alltoallv has up to P-1 partners per rank per superstep.
At 10^5 ranks that fan-out is untenable, which is why record-scale Graph500
codes decompose the *adjacency matrix* over an R x C process grid: edge
(u, v) lives at grid position (grid_row(owner(u)), grid_col(owner(v))), so
each superstep needs only

* a **row broadcast** of the active frontier (C-1 partners), and
* a **column reduce** of relaxation candidates toward vertex owners
  (R-1 partners),

≈ 2·sqrt(P) partners total.  The price is frontier replication across grid
rows and candidate duplication across grid columns.

The relaxation schedule here is frontier (chaotic) relaxation — the 2-D
scheme's communication structure is what this module exists to measure;
the ∆-stepping ordering lives in the 1-D engine.  Answers are exact either
way (tests compare both against Dijkstra).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._deprecation import warn_legacy
from repro.core.coalescing import dedup_min
from repro.core.config import SSSPConfig
from repro.core.relaxation import frontier_edges, scatter_min
from repro.core.result import SSSPResult, derive_parents
from repro.graph.csr import CSRGraph
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition import block1d, block1d_edge_balanced, make_grid
from repro.simmpi.executor import RankExecutor, resolve_executor
from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.faults import FaultPlan, FaultSpec
from repro.simmpi.machine import MachineSpec, small_cluster

__all__ = ["distributed_sssp_2d", "TwoDRun"]

_INF = np.inf


@dataclass
class TwoDRun:
    """Outcome of a 2-D engine run.

    Implements the :class:`repro.api.RunSummary` protocol (``result``,
    ``modeled_time``, ``comm``, ``report()``) shared by every engine.
    """

    engine = "dist2d"

    result: SSSPResult
    rows: int
    cols: int
    simulated_seconds: float
    time_breakdown: dict[str, float]
    trace_summary: dict[str, float | int]
    max_partners_per_rank: int
    meta: dict = field(default_factory=dict)

    @property
    def num_ranks(self) -> int:
        return self.rows * self.cols

    @property
    def modeled_time(self) -> float:
        """Simulated seconds the cost model charged (RunSummary protocol)."""
        return self.simulated_seconds

    @property
    def comm(self) -> dict[str, float | int]:
        """Exact communication statistics (RunSummary protocol)."""
        return self.trace_summary

    def report(self) -> dict:
        """Uniform engine-agnostic run report (RunSummary protocol)."""
        return {
            "engine": self.engine,
            "num_ranks": self.num_ranks,
            "modeled_time": self.modeled_time,
            "time_breakdown": dict(self.time_breakdown),
            "comm": dict(self.comm),
            "counters": self.result.counters.as_dict(),
            "work_imbalance": 1.0,
            "meta": dict(self.meta),
        }

    def teps(self, graph: CSRGraph) -> float:
        if self.simulated_seconds <= 0:
            raise ValueError("run has no positive simulated time")
        return self.result.traversed_edges(graph) / self.simulated_seconds


class _GridRank:
    """One rank of the R x C grid: an edge block plus (maybe) owned vertices.

    State is *row-local*: every per-vertex array spans only this grid row's
    contiguous source range ``[row_lo, row_hi)`` (the union of the owned
    ranges of the row's ``cols`` ranks), never the full vertex set.  That is
    enough because

    * frontier sources are always row-replicated vertices (in range),
    * relaxation *targets* this rank keeps are its own vertices (in range) —
      remote column targets are routed to their owners and their replica
      entries were provably never written under the dense layout (a column
      target inside the row range is owned by this very rank), so dropping
      them loses no information and changes no message.
    """

    def __init__(
        self,
        rank: int,
        rows: int,
        cols: int,
        graph: CSRGraph,
        owner: np.ndarray,
        owned: np.ndarray,
        row_range: tuple[int, int],
        coalesce: bool = True,
        vertex_dtype: np.dtype = np.int64,
        adj_cols: np.ndarray | None = None,
    ) -> None:
        self.rank = rank
        self._owner = owner
        self.coalesce = coalesce
        self.vertex_dtype = vertex_dtype
        self.grid_row = rank // cols
        self.grid_col = rank % cols
        self.rows = rows
        self.cols = cols
        # "local" for a grid rank means *row-local*: global id − row_lo.
        # repro: index-space: self.dist_row[local], self.frontier=local
        # repro: index-space: self.owned=global, self._owner[global]
        self.owned = owned
        self.row_lo, self.row_hi = row_range
        self.own_lo = int(owned[0]) if owned.size else 0
        self.own_hi = int(owned[-1]) + 1 if owned.size else 0
        # Edge block: sources owned by ranks in this grid row (a contiguous
        # slice of the global CSR, renumbered to row-local rows), targets
        # owned by ranks in this grid column (global ids, filtered).  The
        # global CSR is (src, dst)-sorted, so slicing + masking preserves
        # the exact edge order the dense build produced.
        start, stop = graph.indptr[self.row_lo], graph.indptr[self.row_hi]
        adj = graph.adj[start:stop]
        # ``adj_cols`` (the grid column of every target in this row's edge
        # slice) is shared by the row's ``cols`` ranks; the driver computes
        # it once per grid row instead of once per rank.
        if adj_cols is None:
            adj_cols = owner[adj] % cols
        keep = adj_cols == self.grid_col
        kept_upto = np.zeros(adj.size + 1, dtype=np.int64)
        np.cumsum(keep, out=kept_upto[1:])
        self.block = CSRGraph(
            kept_upto[graph.indptr[self.row_lo : self.row_hi + 1] - start],
            adj[keep],
            graph.weight[start:stop][keep],
            self.row_hi - self.row_lo,
        )
        # Authoritative distances for owned vertices; replicated frontier
        # distances for the rest of this grid row's source range.
        self.dist_row = np.full(self.row_hi - self.row_lo, _INF, dtype=np.float64)
        # Row-local ids of newly improved owned vertices.  ``_frontier_segs``
        # counts the appended pieces: a single piece is always sorted and
        # duplicate-free (scatter_min winners, or one sender's broadcast),
        # letting the consumers skip the sort/unique.
        self.frontier = np.empty(0, dtype=np.int64)
        self._frontier_segs = 0
        self.step_edges = 0
        self.step_bytes = 0

    # -- phase 1: frontier broadcast along the grid row --------------------

    def broadcast_frontier(self) -> dict[int, Message]:
        """Send owned active vertices to the other ranks of this grid row."""
        out: dict[int, Message] = {}
        if self.frontier.size == 0:
            return out
        if self._frontier_segs > 1:
            # Pieces appended by separate _apply calls may overlap (a vertex
            # can improve more than once between broadcasts).
            self.frontier = np.unique(self.frontier)
        self._frontier_segs = 1
        msg = Message(
            vertex=(self.frontier + self.row_lo).astype(self.vertex_dtype, copy=False),
            dist=self.dist_row[self.frontier],
        )
        for c in range(self.cols):
            if c != self.grid_col:
                dst = self.grid_row * self.cols + c
                out[dst] = msg
                self.step_bytes += msg.nbytes
        return out

    def receive_frontier(self, msg: Message | None) -> None:
        if msg is None:
            return
        v = msg["vertex"].astype(np.int64, copy=False) - self.row_lo
        np.minimum.at(self.dist_row, v, msg["dist"])
        self.frontier = np.concatenate([self.frontier, v])
        self._frontier_segs += 1

    # -- phase 2: local relax + column reduce ------------------------------

    def relax_block(self) -> dict[int, Message]:
        """Relax the block's edges out of the frontier; route candidates."""
        # repro: index-space: targets=global, dst=global
        if self.frontier.size == 0:
            return {}
        # At this point the frontier is the broadcast-deduplicated owned
        # piece plus one piece per row partner — pieces are sorted and
        # mutually disjoint (vertex ownership partitions the row), so a
        # plain sort reproduces ``np.unique`` exactly, and a lone piece
        # needs nothing at all.
        if self._frontier_segs > 1:
            frontier = np.sort(self.frontier)
        else:
            frontier = self.frontier
        self.frontier = np.empty(0, dtype=np.int64)
        self._frontier_segs = 0
        src, dst, w = frontier_edges(self.block, frontier)
        self.step_edges += int(src.size)
        if src.size == 0:
            return {}
        cands = self.dist_row[src] + w
        if self.coalesce:
            # Send-side coalescing: one minimum per target, and candidates
            # that cannot improve our own replica are dead already.  Only
            # in-range targets have a replica to check — and an in-range
            # column target is necessarily owned by this rank; remote ones
            # had a permanently-inf dense entry, i.e. were always kept.
            targets, best = dedup_min(dst, cands)
            keep = np.ones(targets.size, dtype=bool)
            inrow = (targets >= self.row_lo) & (targets < self.row_hi)
            keep[inrow] = best[inrow] < self.dist_row[targets[inrow] - self.row_lo]
            targets, best = targets[keep], best[keep]
        else:
            targets, best = dst, cands
        if targets.size == 0:
            return {}
        mine = (targets >= self.own_lo) & (targets < self.own_hi)
        self._apply(targets[mine] - self.row_lo, best[mine])
        rem_t, rem_b = targets[~mine], best[~mine]
        if rem_t.size == 0:
            return {}
        # Owners of these targets sit in this grid column by construction.
        return self._route_column(rem_t, rem_b)

    def _route_column(self, targets: np.ndarray, best: np.ndarray) -> dict[int, Message]:
        # repro: wire-path
        # repro: index-space: targets=global
        # Per-destination record order is wire byte order: stable sort only.
        out: dict[int, Message] = {}
        owner_rank = self._owner[targets]
        first = int(owner_rank[0])
        if owner_rank.size == 1 or not np.any(owner_rank != first):
            # Single destination (common once the column has few owners):
            # skip the sort/split machinery.
            msg = Message(
                vertex=targets.astype(self.vertex_dtype, copy=False), dist=best
            )
            self.step_bytes += msg.nbytes
            out[first] = msg
            return out
        order = np.argsort(owner_rank, kind="stable")
        so, st, sb = owner_rank[order], targets[order], best[order]
        cuts = np.flatnonzero(np.diff(so)) + 1
        bounds = np.concatenate(([0], cuts, [so.size]))
        for i in range(bounds.size - 1):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            msg = Message(
                vertex=st[lo:hi].astype(self.vertex_dtype, copy=False),
                dist=sb[lo:hi],
            )
            self.step_bytes += msg.nbytes
            out[int(so[lo])] = msg
        return out

    def receive_candidates(self, msg: Message | None) -> None:
        if msg is None:
            return
        self._apply(
            msg["vertex"].astype(np.int64, copy=False) - self.row_lo, msg["dist"]
        )

    def _apply(self, targets_local: np.ndarray, cands: np.ndarray) -> None:
        """Apply owned candidates (row-local ids) and extend the frontier."""
        improved = scatter_min(self.dist_row, targets_local, cands)
        if improved.size:
            self.frontier = np.concatenate([self.frontier, improved])
            self._frontier_segs += 1

    def take_step_work(self) -> tuple[int, int]:
        work = (self.step_edges, self.step_bytes)
        self.step_edges = 0
        self.step_bytes = 0
        return work

    def frontier_size(self) -> int:
        return int(self.frontier.size)

    def export_final(self) -> dict:
        """Final per-rank payload gathered by the driver after the loop."""
        return {
            "owned_dist": self.dist_row[self.owned - self.row_lo],
            "nbytes": self.state_nbytes(),
            "graph_nbytes": self.graph_payload_nbytes(),
            "lengths": self.state_array_lengths(),
        }

    def state_array_lengths(self) -> dict[str, int]:
        """Length of every resident per-vertex array this rank holds."""
        return {
            "dist_row": int(self.dist_row.size),
            "block_indptr": int(self.block.indptr.size),
        }

    def state_nbytes(self) -> int:
        """Resident bytes of this rank's row-local state (block included)."""
        return int(self.dist_row.nbytes + self.owned.nbytes + self.block.nbytes)

    def graph_payload_nbytes(self) -> int:
        """Bytes of the rank's block of input edges (adjacency + weights)."""
        return int(self.block.adj.nbytes + self.block.weight.nbytes)


def distributed_sssp_2d(
    graph: CSRGraph,
    source: int,
    num_ranks: int = 16,
    machine: MachineSpec | None = None,
    grid: tuple[int, int] | None = None,
    tracer: Tracer | None = None,
    config: SSSPConfig | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
) -> TwoDRun:
    """Legacy entry point for the 2-D engine.

    .. deprecated::
        Prefer ``repro.api.run(graph, source, engine="dist2d", ...)`` — the
        unified facade with the same semantics and a uniform return shape.
    """
    warn_legacy("distributed_sssp_2d", "dist2d")
    return _distributed_sssp_2d(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        grid=grid,
        tracer=tracer,
        config=config,
        faults=faults,
    )


def _distributed_sssp_2d(
    graph: CSRGraph,
    source: int,
    num_ranks: int = 16,
    machine: MachineSpec | None = None,
    grid: tuple[int, int] | None = None,
    tracer: Tracer | None = None,
    config: SSSPConfig | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
    sanitize: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
) -> TwoDRun:
    """Exact SSSP with 2-D frontier relaxation on a process grid.

    ``grid`` defaults to the most-square factorization of ``num_ranks``.
    ``tracer`` (optional) receives round spans and per-exchange events.
    ``faults`` (optional) injects a deterministic fault schedule at the
    fabric; answers are unchanged, only modeled time and retry accounting.
    ``executor``/``workers`` select the rank-execution backend (serial,
    thread, or process) that runs the per-rank compute phases; results are
    bit-identical across backends because ranks share no mutable state and
    every exchange gathers in canonical rank order.

    ``config`` (optional) applies the :class:`SSSPConfig` knobs that are
    meaningful to a frontier engine: ``partition`` (vertex ownership),
    ``coalesce`` (send-side dedup-min + replica filter) and
    ``compressed_indices`` (uint32 vertex ids on the wire).  ``delta`` and
    the bucket knobs do not apply — this engine relaxes the whole frontier
    chaotically and has no buckets (the ∆-stepping ordering lives in the
    1-D engine); they are ignored *by design*, not silently: the run's
    ``meta['variant']`` records the applied configuration.  ``config=None``
    reproduces the historical behavior exactly (block partition, coalescing
    on, int64 wire ids).
    """
    if tracer is None:
        tracer = NULL_TRACER
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    rows, cols = grid if grid is not None else make_grid(num_ranks)
    if rows * cols != num_ranks:
        raise ValueError(f"grid {rows}x{cols} does not match {num_ranks} ranks")
    machine = machine or small_cluster(max(num_ranks, 1))
    fabric = Fabric(machine, num_ranks, tracer=tracer, faults=faults, sanitize=sanitize)
    if config is None:
        part = block1d(n, num_ranks)
        coalesce = True
        vertex_dtype = np.int64
    else:
        if config.partition == "block":
            part = block1d(n, num_ranks)
        elif config.partition == "edge_balanced":
            part = block1d_edge_balanced(graph, num_ranks)
        else:
            raise ValueError(
                "the 2-D engine maps vertex owners onto grid columns and "
                "needs a contiguous partition (block or edge_balanced); "
                f"got {config.partition!r}"
            )
        coalesce = config.coalesce
        small_enough = n <= int(np.iinfo(np.uint32).max)
        vertex_dtype = np.uint32 if (config.compressed_indices and small_enough) else np.int64
    owner = np.asarray(part.owner_array)
    owned_arrays = [part.vertices_of(r) for r in range(num_ranks)]
    # Each grid row's source range: the union of its ranks' (contiguous,
    # ordered) owned ranges.  Row-local state spans exactly this range.
    row_ranges: list[tuple[int, int]] = []
    for gr in range(rows):
        in_row = [a for a in owned_arrays[gr * cols : (gr + 1) * cols] if a.size]
        if in_row:
            row_ranges.append((int(in_row[0][0]), int(in_row[-1][-1]) + 1))
        else:
            row_ranges.append((0, 0))
    # The grid column of every edge target, computed once per grid row and
    # shared by the row's ranks (each would otherwise redo the same
    # owner-gather over the row's full edge slice).
    owner_col = owner % cols
    row_adj_cols = [
        owner_col[graph.adj[graph.indptr[lo] : graph.indptr[hi]]]
        for lo, hi in row_ranges
    ]
    ranks = [
        _GridRank(
            r,
            rows,
            cols,
            graph,
            owner,
            owned_arrays[r],
            row_ranges[r // cols],
            coalesce=coalesce,
            vertex_dtype=vertex_dtype,
            adj_cols=row_adj_cols[r // cols],
        )
        for r in range(num_ranks)
    ]
    src_rank = ranks[int(owner[source])]
    src_rank.dist_row[source - src_rank.row_lo] = 0.0
    src_rank.frontier = np.array([source - src_rank.row_lo], dtype=np.int64)

    exec_obj, owns_executor = resolve_executor(executor, workers)
    team = exec_obj.team(ranks, tracer=tracer)

    rounds = 0
    max_partners = 0
    try:
      # Solve span: bounds wall-clock attribution (see dist_sssp).
      with tracer.span(
          "solve", cat="engine", backend=team.backend, workers=team.num_workers
      ):
        while True:
            active = np.array(team.call("frontier_size"), dtype=np.float64)
            total_active = fabric.allreduce(active, op="sum")
            if total_active == 0:
                break
            rounds += 1
            with tracer.span(
                "round",
                cat="engine",
                phase="frontier",
                epoch=rounds,
                frontier=int(total_active),
            ) as sp:
                # Phase 1: row broadcast of owned frontiers.
                bcast = team.call("broadcast_frontier", parallel=True)
                max_partners = max(
                    max_partners, max((len(o) for o in bcast), default=0)
                )
                inboxes = fabric.exchange(bcast)
                team.call(
                    "receive_frontier",
                    per_rank=[(m,) for m in inboxes],
                    parallel=True,
                )
                # Phase 2: block relaxation + column reduce to owners.
                reduce_out = team.call("relax_block", parallel=True)
                max_partners = max(
                    max_partners, max((len(o) for o in reduce_out), default=0)
                )
                inboxes = fabric.exchange(reduce_out)
                team.call(
                    "receive_candidates",
                    per_rank=[(m,) for m in inboxes],
                    parallel=True,
                )
                work = np.array(team.call("take_step_work"), dtype=np.float64)
                fabric.charge_compute(edges=work[:, 0], bytes=work[:, 1])
                critical_path, sum_of_ranks = team.take_step_timing()
                sp.tag(
                    edges=int(work[:, 0].sum()),
                    bytes=int(work[:, 1].sum()),
                    critical_path=critical_path,
                    sum_of_ranks=sum_of_ranks,
                )
        exports = team.call("export_final")
    finally:
        team.close()
        if owns_executor:
            exec_obj.close()

    dist = np.full(n, _INF, dtype=np.float64)
    for r, export in zip(ranks, exports):
        dist[r.owned] = export["owned_dist"]
    result = SSSPResult(
        source=source, dist=dist, parent=derive_parents(graph, dist, source)
    )
    result.counters.add("rounds", rounds)
    result.counters.add(
        "edges_relaxed", int(fabric.work_per_rank.get("edges", np.zeros(1)).sum())
    )
    result.meta.update(
        algorithm="distributed_sssp_2d", grid=f"{rows}x{cols}", partition=part.kind
    )
    if config is not None:
        result.meta["variant"] = config.variant_name()
    if fabric.faults is not None:
        result.meta["faults"] = fabric.faults.spec.describe()
        result.counters.add("messages_dropped", fabric.trace.messages_dropped)
        result.counters.add("retry_rounds", fabric.trace.retries)
        result.counters.add("bytes_retransmitted", fabric.trace.bytes_retransmitted)
        result.counters.add("rank_stalls", fabric.trace.stalls)
    if fabric.sanitizer is not None:
        result.meta["sanitizer"] = fabric.sanitizer.report()
    rank_bytes = [e["nbytes"] for e in exports]
    rank_state_only = [e["nbytes"] - e["graph_nbytes"] for e in exports]
    rank_lengths = [e["lengths"] for e in exports]
    return TwoDRun(
        result=result,
        rows=rows,
        cols=cols,
        simulated_seconds=fabric.clock.total,
        time_breakdown=fabric.clock.breakdown(),
        trace_summary=fabric.trace.summary(),
        max_partners_per_rank=max_partners,
        meta={
            "executor": {"backend": team.backend, "workers": team.num_workers},
            "rank_state": {
                "max_bytes": max(rank_bytes),
                "total_bytes": sum(rank_bytes),
                "max_state_bytes": max(rank_state_only),
                "max_array_len": max(max(d.values()) for d in rank_lengths),
            },
        },
    )
