"""2-D (checkerboard) distributed SSSP engine.

The 1-D engine's alltoallv has up to P-1 partners per rank per superstep.
At 10^5 ranks that fan-out is untenable, which is why record-scale Graph500
codes decompose the *adjacency matrix* over an R x C process grid: edge
(u, v) lives at grid position (grid_row(owner(u)), grid_col(owner(v))), so
each superstep needs only

* a **row broadcast** of the active frontier (C-1 partners), and
* a **column reduce** of relaxation candidates toward vertex owners
  (R-1 partners),

≈ 2·sqrt(P) partners total.  The price is frontier replication across grid
rows and candidate duplication across grid columns.

The relaxation schedule here is frontier (chaotic) relaxation — the 2-D
scheme's communication structure is what this module exists to measure;
the ∆-stepping ordering lives in the 1-D engine.  Answers are exact either
way (tests compare both against Dijkstra).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._deprecation import warn_legacy
from repro.core.coalescing import dedup_min
from repro.core.config import SSSPConfig
from repro.core.relaxation import frontier_edges, scatter_min
from repro.core.result import SSSPResult, derive_parents
from repro.graph.csr import CSRGraph, build_csr
from repro.graph.types import EdgeList
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition import block1d, block1d_edge_balanced, make_grid
from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.faults import FaultPlan, FaultSpec
from repro.simmpi.machine import MachineSpec, small_cluster

__all__ = ["distributed_sssp_2d", "TwoDRun"]

_INF = np.inf


@dataclass
class TwoDRun:
    """Outcome of a 2-D engine run.

    Implements the :class:`repro.api.RunSummary` protocol (``result``,
    ``modeled_time``, ``comm``, ``report()``) shared by every engine.
    """

    engine = "dist2d"

    result: SSSPResult
    rows: int
    cols: int
    simulated_seconds: float
    time_breakdown: dict[str, float]
    trace_summary: dict[str, float | int]
    max_partners_per_rank: int
    meta: dict = field(default_factory=dict)

    @property
    def num_ranks(self) -> int:
        return self.rows * self.cols

    @property
    def modeled_time(self) -> float:
        """Simulated seconds the cost model charged (RunSummary protocol)."""
        return self.simulated_seconds

    @property
    def comm(self) -> dict[str, float | int]:
        """Exact communication statistics (RunSummary protocol)."""
        return self.trace_summary

    def report(self) -> dict:
        """Uniform engine-agnostic run report (RunSummary protocol)."""
        return {
            "engine": self.engine,
            "num_ranks": self.num_ranks,
            "modeled_time": self.modeled_time,
            "time_breakdown": dict(self.time_breakdown),
            "comm": dict(self.comm),
            "counters": self.result.counters.as_dict(),
            "work_imbalance": 1.0,
            "meta": dict(self.meta),
        }

    def teps(self, graph: CSRGraph) -> float:
        if self.simulated_seconds <= 0:
            raise ValueError("run has no positive simulated time")
        return self.result.traversed_edges(graph) / self.simulated_seconds


class _GridRank:
    """One rank of the R x C grid: an edge block plus (maybe) owned vertices."""

    def __init__(
        self,
        rank: int,
        rows: int,
        cols: int,
        graph: CSRGraph,
        owner: np.ndarray,
        owned: np.ndarray,
        coalesce: bool = True,
        vertex_dtype: np.dtype = np.int64,
    ) -> None:
        self.rank = rank
        self._owner = owner
        self.coalesce = coalesce
        self.vertex_dtype = vertex_dtype
        self.grid_row = rank // cols
        self.grid_col = rank % cols
        self.rows = rows
        self.cols = cols
        n = graph.num_vertices
        self.owned = owned
        self.owned_mask = np.zeros(n, dtype=bool)
        self.owned_mask[owned] = True
        # Edge block: sources owned by ranks in this grid row, targets owned
        # by ranks in this grid column.
        src_all = np.repeat(np.arange(n, dtype=np.int64), graph.out_degree)
        src_row = owner[src_all] // cols
        dst_col = owner[graph.adj] % cols
        mask = (src_row == self.grid_row) & (dst_col == self.grid_col)
        self.block = build_csr(
            EdgeList(src_all[mask], graph.adj[mask], graph.weight[mask], n),
            symmetrize=False,
            drop_self_loops=False,
            dedup=False,
        )
        # Authoritative distances for owned vertices; replicated frontier
        # distances for this grid row's sources.
        self.dist = np.full(n, _INF, dtype=np.float64)
        self.frontier = np.empty(0, dtype=np.int64)  # owned, newly improved
        self.step_edges = 0
        self.step_bytes = 0

    # -- phase 1: frontier broadcast along the grid row --------------------

    def broadcast_frontier(self) -> dict[int, Message]:
        """Send owned active vertices to the other ranks of this grid row."""
        out: dict[int, Message] = {}
        if self.frontier.size == 0:
            return out
        self.frontier = np.unique(self.frontier)
        msg = Message(
            vertex=self.frontier.astype(self.vertex_dtype, copy=False),
            dist=self.dist[self.frontier],
        )
        for c in range(self.cols):
            if c != self.grid_col:
                dst = self.grid_row * self.cols + c
                out[dst] = msg
                self.step_bytes += msg.nbytes
        return out

    def receive_frontier(self, msg: Message | None) -> None:
        if msg is None:
            return
        v = msg["vertex"]
        np.minimum.at(self.dist, v, msg["dist"])
        self.frontier = np.concatenate([self.frontier, v])

    # -- phase 2: local relax + column reduce ------------------------------

    def relax_block(self) -> dict[int, Message]:
        """Relax the block's edges out of the frontier; route candidates."""
        if self.frontier.size == 0:
            return {}
        frontier = np.unique(self.frontier)
        self.frontier = np.empty(0, dtype=np.int64)
        src, dst, w = frontier_edges(self.block, frontier)
        self.step_edges += int(src.size)
        if src.size == 0:
            return {}
        cands = self.dist[src] + w
        if self.coalesce:
            # Send-side coalescing: one minimum per target, and candidates
            # that cannot improve our own replica are dead already.
            targets, best = dedup_min(dst, cands)
            keep = best < self.dist[targets]
            targets, best = targets[keep], best[keep]
        else:
            targets, best = dst, cands
        if targets.size == 0:
            return {}
        mine = self.owned_mask[targets]
        self._apply(targets[mine], best[mine])
        rem_t, rem_b = targets[~mine], best[~mine]
        if rem_t.size == 0:
            return {}
        # Owners of these targets sit in this grid column by construction.
        return self._route_column(rem_t, rem_b)

    def _route_column(self, targets: np.ndarray, best: np.ndarray) -> dict[int, Message]:
        out: dict[int, Message] = {}
        owner_rank = self._owner[targets]
        order = np.argsort(owner_rank, kind="stable")
        so, st, sb = owner_rank[order], targets[order], best[order]
        cuts = np.flatnonzero(np.diff(so)) + 1
        for dst_rank, t_chunk, b_chunk in zip(
            so[np.concatenate(([0], cuts))], np.split(st, cuts), np.split(sb, cuts)
        ):
            msg = Message(
                vertex=t_chunk.astype(self.vertex_dtype, copy=False), dist=b_chunk
            )
            self.step_bytes += msg.nbytes
            out[int(dst_rank)] = msg
        return out

    def receive_candidates(self, msg: Message | None) -> None:
        if msg is None:
            return
        self._apply(msg["vertex"], msg["dist"])

    def _apply(self, targets: np.ndarray, cands: np.ndarray) -> None:
        improved = scatter_min(self.dist, targets, cands)
        improved = improved[self.owned_mask[improved]]
        if improved.size:
            self.frontier = np.concatenate([self.frontier, improved])

    def take_step_work(self) -> tuple[int, int]:
        work = (self.step_edges, self.step_bytes)
        self.step_edges = 0
        self.step_bytes = 0
        return work


def distributed_sssp_2d(
    graph: CSRGraph,
    source: int,
    num_ranks: int = 16,
    machine: MachineSpec | None = None,
    grid: tuple[int, int] | None = None,
    tracer: Tracer | None = None,
    config: SSSPConfig | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
) -> TwoDRun:
    """Legacy entry point for the 2-D engine.

    .. deprecated::
        Prefer ``repro.api.run(graph, source, engine="dist2d", ...)`` — the
        unified facade with the same semantics and a uniform return shape.
    """
    warn_legacy("distributed_sssp_2d", "dist2d")
    return _distributed_sssp_2d(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        grid=grid,
        tracer=tracer,
        config=config,
        faults=faults,
    )


def _distributed_sssp_2d(
    graph: CSRGraph,
    source: int,
    num_ranks: int = 16,
    machine: MachineSpec | None = None,
    grid: tuple[int, int] | None = None,
    tracer: Tracer | None = None,
    config: SSSPConfig | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
) -> TwoDRun:
    """Exact SSSP with 2-D frontier relaxation on a process grid.

    ``grid`` defaults to the most-square factorization of ``num_ranks``.
    ``tracer`` (optional) receives round spans and per-exchange events.
    ``faults`` (optional) injects a deterministic fault schedule at the
    fabric; answers are unchanged, only modeled time and retry accounting.

    ``config`` (optional) applies the :class:`SSSPConfig` knobs that are
    meaningful to a frontier engine: ``partition`` (vertex ownership),
    ``coalesce`` (send-side dedup-min + replica filter) and
    ``compressed_indices`` (uint32 vertex ids on the wire).  ``delta`` and
    the bucket knobs do not apply — this engine relaxes the whole frontier
    chaotically and has no buckets (the ∆-stepping ordering lives in the
    1-D engine); they are ignored *by design*, not silently: the run's
    ``meta['variant']`` records the applied configuration.  ``config=None``
    reproduces the historical behavior exactly (block partition, coalescing
    on, int64 wire ids).
    """
    if tracer is None:
        tracer = NULL_TRACER
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    rows, cols = grid if grid is not None else make_grid(num_ranks)
    if rows * cols != num_ranks:
        raise ValueError(f"grid {rows}x{cols} does not match {num_ranks} ranks")
    machine = machine or small_cluster(max(num_ranks, 1))
    fabric = Fabric(machine, num_ranks, tracer=tracer, faults=faults)
    if config is None:
        part = block1d(n, num_ranks)
        coalesce = True
        vertex_dtype = np.int64
    else:
        if config.partition == "block":
            part = block1d(n, num_ranks)
        elif config.partition == "edge_balanced":
            part = block1d_edge_balanced(graph, num_ranks)
        else:
            raise ValueError(
                "the 2-D engine maps vertex owners onto grid columns and "
                "needs a contiguous partition (block or edge_balanced); "
                f"got {config.partition!r}"
            )
        coalesce = config.coalesce
        small_enough = n <= int(np.iinfo(np.uint32).max)
        vertex_dtype = np.uint32 if (config.compressed_indices and small_enough) else np.int64
    owner = np.asarray(part.owner_array)
    ranks = [
        _GridRank(
            r,
            rows,
            cols,
            graph,
            owner,
            part.vertices_of(r),
            coalesce=coalesce,
            vertex_dtype=vertex_dtype,
        )
        for r in range(num_ranks)
    ]
    src_rank = ranks[int(owner[source])]
    src_rank.dist[source] = 0.0
    src_rank.frontier = np.array([source], dtype=np.int64)

    rounds = 0
    max_partners = 0
    while True:
        active = np.array([float(r.frontier.size) for r in ranks])
        total_active = fabric.allreduce(active, op="sum")
        if total_active == 0:
            break
        rounds += 1
        with tracer.span(
            "round",
            cat="engine",
            phase="frontier",
            epoch=rounds,
            frontier=int(total_active),
        ) as sp:
            # Phase 1: row broadcast of owned frontiers.
            bcast = [r.broadcast_frontier() for r in ranks]
            max_partners = max(max_partners, max((len(o) for o in bcast), default=0))
            inboxes = fabric.exchange(bcast)
            for r, inbox in zip(ranks, inboxes):
                r.receive_frontier(inbox)
            # Phase 2: block relaxation + column reduce to owners.
            reduce_out = [r.relax_block() for r in ranks]
            max_partners = max(
                max_partners, max((len(o) for o in reduce_out), default=0)
            )
            inboxes = fabric.exchange(reduce_out)
            for r, inbox in zip(ranks, inboxes):
                r.receive_candidates(inbox)
            work = np.array([r.take_step_work() for r in ranks], dtype=np.float64)
            fabric.charge_compute(edges=work[:, 0], bytes=work[:, 1])
            sp.tag(edges=int(work[:, 0].sum()), bytes=int(work[:, 1].sum()))

    dist = np.full(n, _INF, dtype=np.float64)
    for r in ranks:
        dist[r.owned] = r.dist[r.owned]
    result = SSSPResult(
        source=source, dist=dist, parent=derive_parents(graph, dist, source)
    )
    result.counters.add("rounds", rounds)
    result.counters.add(
        "edges_relaxed", int(fabric.work_per_rank.get("edges", np.zeros(1)).sum())
    )
    result.meta.update(
        algorithm="distributed_sssp_2d", grid=f"{rows}x{cols}", partition=part.kind
    )
    if config is not None:
        result.meta["variant"] = config.variant_name()
    if fabric.faults is not None:
        result.meta["faults"] = fabric.faults.spec.describe()
        result.counters.add("messages_dropped", fabric.trace.messages_dropped)
        result.counters.add("retry_rounds", fabric.trace.retries)
        result.counters.add("bytes_retransmitted", fabric.trace.bytes_retransmitted)
        result.counters.add("rank_stalls", fabric.trace.stalls)
    return TwoDRun(
        result=result,
        rows=rows,
        cols=cols,
        simulated_seconds=fabric.clock.total,
        time_breakdown=fabric.clock.breakdown(),
        trace_summary=fabric.trace.summary(),
        max_partners_per_rank=max_partners,
    )
