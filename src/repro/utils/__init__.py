"""Low-level utilities shared by every subsystem.

Deterministic counter-based PRNG (:mod:`repro.utils.prng`), numpy-backed
bitsets (:mod:`repro.utils.bitset`), wall-clock/counter instrumentation
(:mod:`repro.utils.timing`) and small statistics helpers
(:mod:`repro.utils.stats`).
"""

from repro.utils.bitset import Bitset
from repro.utils.prng import CounterRNG, splitmix64
from repro.utils.stats import geometric_mean, harmonic_mean, summarize
from repro.utils.timing import Counters, Timer

__all__ = [
    "Bitset",
    "CounterRNG",
    "Counters",
    "Timer",
    "geometric_mean",
    "harmonic_mean",
    "splitmix64",
    "summarize",
]
