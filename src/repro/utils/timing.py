"""Wall-clock timers and named operation counters.

The benchmark harness separates *measured wall time* (what Python actually
spent) from *simulated machine time* (what the cost model charges); this
module provides the former plus the counter plumbing both share.
"""

# repro-lint: disable-file=obs-manual-timing  (Timer is the sanctioned
# legacy wall-clock shim the harnesses print; it predates the tracer and
# its readings never feed the profiler's bucket attribution)

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Timer", "Counters"]


@dataclass
class Timer:
    """Accumulating wall-clock timer usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.seconds >= 0
    True
    """

    seconds: float = 0.0
    laps: int = 0
    _start: float | None = None

    @property
    def running(self) -> bool:
        """Whether the timer is inside an open lap."""
        return self._start is not None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError(
                "Timer is already running: re-entering would silently drop "
                "the outer lap (use one Timer per nesting level)"
            )
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without entry")
        self.seconds += time.perf_counter() - self._start
        self.laps += 1
        self._start = None

    def reset(self) -> None:
        self.seconds = 0.0
        self.laps = 0
        self._start = None


@dataclass
class Counters:
    """A bag of named integer counters with dict-like access.

    Counters are the ground truth the cost model consumes: edges relaxed,
    messages sent, bytes moved, synchronization rounds, bucket epochs.
    """

    values: defaultdict = field(default_factory=lambda: defaultdict(int))

    def add(self, name: str, amount: int = 1) -> None:
        self.values[name] += int(amount)

    def get(self, name: str) -> int:
        return int(self.values.get(name, 0))

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def merge(self, other: "Counters") -> None:
        """Accumulate another counter bag into this one."""
        for k, v in other.values.items():
            self.values[k] += v

    def as_dict(self) -> dict[str, int]:
        return {k: int(v) for k, v in sorted(self.values.items())}

    def reset(self) -> None:
        self.values.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"Counters({inner})"
