"""A numpy-backed fixed-size bitset, plus lane-word helpers.

Used for frontier membership, "vertex settled" flags and validation marks.
Word-parallel operations (union, intersection, popcount) run at memory
bandwidth; per-index operations accept arrays so callers never loop in
Python.

The module-level lane helpers serve the bit-parallel multi-source BFS
kernel, which carries one uint64 word *per vertex* with one bit per root
lane: :func:`lane_bit` makes a single-lane mask, :func:`and_not` is the
word-parallel "new = arrivals & ~visited" step, :func:`nonzero_lanes`
enumerates which lanes are present anywhere in a word array, and
:func:`lane_members` extracts one lane's membership column as indices.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = [
    "Bitset",
    "MAX_LANES",
    "and_not",
    "lane_bit",
    "lane_matrix",
    "lane_members",
    "nonzero_lanes",
]

_WORD_BITS = 64

#: Lanes per word: one uint64 bit per root in the batched BFS kernel.
MAX_LANES = _WORD_BITS


def lane_bit(lane: int) -> np.uint64:
    """The single-bit mask selecting ``lane`` (0-based) within a word."""
    if not 0 <= lane < MAX_LANES:
        raise ValueError(f"lane must be in [0, {MAX_LANES}), got {lane}")
    return np.uint64(1) << np.uint64(lane)


def and_not(words: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Word-parallel ``words & ~mask`` (no Python-int promotion pitfalls)."""
    return np.bitwise_and(words, np.bitwise_not(mask))


def nonzero_lanes(words: np.ndarray) -> np.ndarray:
    """Sorted lane indices set anywhere in ``words`` (int64, ≤ 64 entries).

    The union over all words is one ``bitwise_or`` reduction, so a
    kernel's per-lane loop iterates only over lanes that actually have
    members this pass.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.size == 0:
        return np.empty(0, dtype=np.int64)
    union = np.bitwise_or.reduce(words.ravel())
    if union == 0:
        return np.empty(0, dtype=np.int64)
    bits = np.unpackbits(union.reshape(1).view(np.uint8), bitorder="little")
    return np.flatnonzero(bits).astype(np.int64)


def lane_matrix(words: np.ndarray) -> np.ndarray:
    """Unpack words into an ``(n, MAX_LANES)`` bool matrix, bit i → column i.

    One ``np.unpackbits`` pass replaces a per-lane masking loop: kernels
    get every (index, lane) membership pair from ``np.nonzero`` of the
    matrix instead of ``MAX_LANES`` passes over the word array.
    """
    # Little-endian layout pins the byte→lane map on any host.
    words = np.ascontiguousarray(words, dtype="<u8")
    if words.size == 0:
        return np.empty((0, MAX_LANES), dtype=bool)
    bits = np.unpackbits(
        words.view(np.uint8).reshape(-1, 8), axis=1, bitorder="little"
    )
    return bits.view(bool)


def lane_members(words: np.ndarray, lane: int) -> np.ndarray:
    """Indices whose word has bit ``lane`` set — one lane's membership column."""
    words = np.asarray(words, dtype=np.uint64)
    return np.flatnonzero(np.bitwise_and(words, lane_bit(lane)) != 0).astype(
        np.int64
    )


class Bitset:
    """Fixed-capacity set of integers in ``[0, size)`` stored as packed bits."""

    __slots__ = ("size", "words")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.size = int(size)
        nwords = (self.size + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self.words = np.zeros(nwords, dtype=np.uint64)
        else:
            if words.shape != (nwords,):
                raise ValueError(f"expected {nwords} words, got {words.shape}")
            self.words = words

    # -- construction ----------------------------------------------------

    @classmethod
    def from_indices(cls, size: int, indices: np.ndarray) -> "Bitset":
        bs = cls(size)
        bs.add(indices)
        return bs

    def copy(self) -> "Bitset":
        return Bitset(self.size, self.words.copy())

    # -- element operations (vectorized) ----------------------------------

    def _check(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64).ravel()
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise IndexError(f"index out of range for bitset of size {self.size}")
        return idx

    def add(self, idx: np.ndarray | int) -> None:
        idx = self._check(idx)
        np.bitwise_or.at(
            self.words,
            idx >> 6,
            np.uint64(1) << (idx & 63).astype(np.uint64),
        )

    def discard(self, idx: np.ndarray | int) -> None:
        idx = self._check(idx)
        masks = np.zeros_like(self.words)
        np.bitwise_or.at(masks, idx >> 6, np.uint64(1) << (idx & 63).astype(np.uint64))
        self.words &= ~masks

    def test(self, idx: np.ndarray | int) -> np.ndarray:
        """Return a boolean array: membership of each index."""
        idx = self._check(idx)
        bits = (self.words[idx >> 6] >> (idx & 63).astype(np.uint64)) & np.uint64(1)
        return bits.astype(bool)

    def __contains__(self, i: int) -> bool:
        return bool(self.test(np.asarray([i]))[0])

    # -- set operations ----------------------------------------------------

    def _binop(self, other: "Bitset", op) -> "Bitset":
        if self.size != other.size:
            raise ValueError("bitset size mismatch")
        return Bitset(self.size, op(self.words, other.words))

    def __or__(self, other: "Bitset") -> "Bitset":
        return self._binop(other, np.bitwise_or)

    def __and__(self, other: "Bitset") -> "Bitset":
        return self._binop(other, np.bitwise_and)

    def __sub__(self, other: "Bitset") -> "Bitset":
        if self.size != other.size:
            raise ValueError("bitset size mismatch")
        return Bitset(self.size, self.words & ~other.words)

    def and_not(self, other: "Bitset") -> "Bitset":
        """Named spelling of ``self - other`` (the BFS claim step)."""
        return self - other

    def __ior__(self, other: "Bitset") -> "Bitset":
        if self.size != other.size:
            raise ValueError("bitset size mismatch")
        self.words |= other.words
        return self

    def clear(self) -> None:
        self.words[:] = 0

    # -- queries -----------------------------------------------------------

    def count(self) -> int:
        """Population count."""
        return int(np.bitwise_count(self.words).sum())

    def __len__(self) -> int:
        return self.count()

    def any(self) -> bool:
        return bool(self.words.any())

    def to_indices(self) -> np.ndarray:
        """Return the sorted member indices as an int64 array."""
        if not self.words.any():
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        idx = np.flatnonzero(bits[: self.size])
        return idx.astype(np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_indices().tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self.size == other.size and bool(np.array_equal(self.words, other.words))

    def __hash__(self) -> int:  # bitsets are mutable; forbid hashing
        raise TypeError("Bitset is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bitset(size={self.size}, count={self.count()})"
