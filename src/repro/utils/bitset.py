"""A numpy-backed fixed-size bitset.

Used for frontier membership, "vertex settled" flags and validation marks.
Word-parallel operations (union, intersection, popcount) run at memory
bandwidth; per-index operations accept arrays so callers never loop in
Python.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["Bitset"]

_WORD_BITS = 64


class Bitset:
    """Fixed-capacity set of integers in ``[0, size)`` stored as packed bits."""

    __slots__ = ("size", "words")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.size = int(size)
        nwords = (self.size + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self.words = np.zeros(nwords, dtype=np.uint64)
        else:
            if words.shape != (nwords,):
                raise ValueError(f"expected {nwords} words, got {words.shape}")
            self.words = words

    # -- construction ----------------------------------------------------

    @classmethod
    def from_indices(cls, size: int, indices: np.ndarray) -> "Bitset":
        bs = cls(size)
        bs.add(indices)
        return bs

    def copy(self) -> "Bitset":
        return Bitset(self.size, self.words.copy())

    # -- element operations (vectorized) ----------------------------------

    def _check(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64).ravel()
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise IndexError(f"index out of range for bitset of size {self.size}")
        return idx

    def add(self, idx: np.ndarray | int) -> None:
        idx = self._check(idx)
        np.bitwise_or.at(
            self.words,
            idx >> 6,
            np.uint64(1) << (idx & 63).astype(np.uint64),
        )

    def discard(self, idx: np.ndarray | int) -> None:
        idx = self._check(idx)
        masks = np.zeros_like(self.words)
        np.bitwise_or.at(masks, idx >> 6, np.uint64(1) << (idx & 63).astype(np.uint64))
        self.words &= ~masks

    def test(self, idx: np.ndarray | int) -> np.ndarray:
        """Return a boolean array: membership of each index."""
        idx = self._check(idx)
        bits = (self.words[idx >> 6] >> (idx & 63).astype(np.uint64)) & np.uint64(1)
        return bits.astype(bool)

    def __contains__(self, i: int) -> bool:
        return bool(self.test(np.asarray([i]))[0])

    # -- set operations ----------------------------------------------------

    def _binop(self, other: "Bitset", op) -> "Bitset":
        if self.size != other.size:
            raise ValueError("bitset size mismatch")
        return Bitset(self.size, op(self.words, other.words))

    def __or__(self, other: "Bitset") -> "Bitset":
        return self._binop(other, np.bitwise_or)

    def __and__(self, other: "Bitset") -> "Bitset":
        return self._binop(other, np.bitwise_and)

    def __sub__(self, other: "Bitset") -> "Bitset":
        if self.size != other.size:
            raise ValueError("bitset size mismatch")
        return Bitset(self.size, self.words & ~other.words)

    def __ior__(self, other: "Bitset") -> "Bitset":
        if self.size != other.size:
            raise ValueError("bitset size mismatch")
        self.words |= other.words
        return self

    def clear(self) -> None:
        self.words[:] = 0

    # -- queries -----------------------------------------------------------

    def count(self) -> int:
        """Population count."""
        return int(np.bitwise_count(self.words).sum())

    def __len__(self) -> int:
        return self.count()

    def any(self) -> bool:
        return bool(self.words.any())

    def to_indices(self) -> np.ndarray:
        """Return the sorted member indices as an int64 array."""
        if not self.words.any():
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        idx = np.flatnonzero(bits[: self.size])
        return idx.astype(np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_indices().tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self.size == other.size and bool(np.array_equal(self.words, other.words))

    def __hash__(self) -> int:  # bitsets are mutable; forbid hashing
        raise TypeError("Bitset is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bitset(size={self.size}, count={self.count()})"
