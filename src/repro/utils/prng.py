"""Deterministic, counter-based pseudo-random number generation.

Extreme-scale graph generation cannot use a sequential PRNG: every rank must
be able to materialize *its* slice of the edge list without communicating,
and re-running with the same seed must produce bit-identical graphs no matter
how many ranks participate.  The standard solution (used by the Graph500
reference code and by counter-based generators such as Philox) is a *pure
function* from ``(seed, stream, counter) -> uint64``.  We use the splitmix64
finalizer, which passes BigCrush and is trivially vectorizable with numpy.

All functions operate on ``uint64`` arrays and are safe under numpy's
wrap-around semantics for unsigned integer arithmetic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64", "CounterRNG"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)
# 2^-64, to map uint64 -> [0, 1).
_INV_2_64 = float(2.0**-64)


def splitmix64(x: np.ndarray | int) -> np.ndarray:
    """Apply the splitmix64 finalizer to ``x`` (scalar or uint64 array).

    This is a bijective mixing function on 64-bit integers; feeding it the
    values ``seed + GOLDEN * counter`` yields the splitmix64 stream.
    """
    with np.errstate(over="ignore"):
        z = np.asarray(x, dtype=np.uint64)
        z = (z + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> _SHIFT30)) * _MIX1
        z = (z ^ (z >> _SHIFT27)) * _MIX2
        return z ^ (z >> _SHIFT31)


def _mix_scalar(x: int) -> int:
    return int(splitmix64(np.uint64(x & 0xFFFFFFFFFFFFFFFF)))


class CounterRNG:
    """A stateless, splittable random stream.

    ``CounterRNG(seed, stream)`` defines an infinite sequence of uint64
    values indexed by a counter.  ``uint64(n)`` returns the next ``n``
    values and advances the counter; ``at(counters)`` evaluates the stream
    at arbitrary indices without touching the cursor, which is what the
    distributed generator uses to produce its slice of the edge list.

    Two instances with the same ``(seed, stream)`` produce the same values
    regardless of call granularity: ``uint64(4)`` twice equals ``uint64(8)``
    once.
    """

    __slots__ = ("_base", "_cursor", "seed", "stream")

    def __init__(self, seed: int, stream: int = 0) -> None:
        self.seed = int(seed)
        self.stream = int(stream)
        # Derive a stream-specific base key so that distinct streams with the
        # same seed are statistically independent.
        self._base = _mix_scalar(self.seed ^ _mix_scalar(0xA5A5A5A5A5A5A5A5 ^ self.stream))
        self._cursor = 0

    def split(self, stream: int) -> "CounterRNG":
        """Return an independent stream derived from this one."""
        return CounterRNG(self._base, stream)

    # -- indexed (stateless) access -------------------------------------

    def at(self, counters: np.ndarray | int) -> np.ndarray:
        """Evaluate the stream at the given counter indices."""
        with np.errstate(over="ignore"):
            c = np.asarray(counters, dtype=np.uint64)
            return splitmix64(np.uint64(self._base) + c * _GOLDEN)

    def uniform_at(self, counters: np.ndarray | int) -> np.ndarray:
        """Uniform [0, 1) doubles at the given counter indices."""
        return self.at(counters).astype(np.float64) * _INV_2_64

    def uniform_pos_at(self, counters: np.ndarray | int) -> np.ndarray:
        """Uniform (0, 1] doubles — strictly positive, per the Graph500 spec.

        Edge weights must be positive so that every shortest-path tree edge
        strictly decreases the distance toward the root (tree derivation and
        validation rely on it).
        """
        return (self.at(counters).astype(np.float64) + 1.0) * _INV_2_64

    # -- sequential access ----------------------------------------------

    @property
    def cursor(self) -> int:
        """Number of values consumed so far from the sequential interface."""
        return self._cursor

    def uint64(self, n: int) -> np.ndarray:
        """Return the next ``n`` uint64 values."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        idx = np.arange(self._cursor, self._cursor + n, dtype=np.uint64)
        self._cursor += n
        return self.at(idx)

    def uniform(self, n: int) -> np.ndarray:
        """Return the next ``n`` uniform [0, 1) doubles."""
        return self.uint64(n).astype(np.float64) * _INV_2_64

    def uniform_pos(self, n: int) -> np.ndarray:
        """Return the next ``n`` uniform (0, 1] doubles (strictly positive)."""
        return (self.uint64(n).astype(np.float64) + 1.0) * _INV_2_64

    def below(self, n: int, bound: int) -> np.ndarray:
        """Return ``n`` integers uniform on [0, bound).

        Uses the multiply-shift reduction (Lemire); the modulo bias is below
        2^-32 for any bound < 2^32, which is immaterial for graph sampling.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        vals = self.uint64(n)
        # (x * bound) >> 64 without 128-bit ints: use the top 32 bits when the
        # bound fits, else fall back to float-free modulo.
        if bound <= 0xFFFFFFFF:
            return ((vals >> np.uint64(32)) * np.uint64(bound)) >> np.uint64(32)
        return vals % np.uint64(bound)

    def shuffle_permutation(self, n: int) -> np.ndarray:
        """Return a deterministic permutation of [0, n).

        Implemented as an argsort of the stream values, so the permutation is
        a pure function of (seed, stream) — every rank can recompute it.
        """
        keys = self.at(np.arange(n, dtype=np.uint64))
        # Break potential (astronomically unlikely) key ties by index so the
        # result is fully deterministic across numpy versions.
        return np.argsort(keys, kind="stable").astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CounterRNG(seed={self.seed}, stream={self.stream}, cursor={self._cursor})"
