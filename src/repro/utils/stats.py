"""Statistics helpers used by the Graph500 reporting layer.

The Graph500 specification mandates reporting the *harmonic* mean of TEPS
over the sampled roots (TEPS is a rate; harmonic mean of rates corresponds
to total-work / total-time) together with its standard error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["harmonic_mean", "geometric_mean", "summarize", "Summary"]


def harmonic_mean(x: np.ndarray) -> float:
    """Harmonic mean of strictly positive values."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("harmonic_mean of empty array")
    if np.any(x <= 0):
        raise ValueError("harmonic_mean requires strictly positive values")
    return float(x.size / np.sum(1.0 / x))


def geometric_mean(x: np.ndarray) -> float:
    """Geometric mean of strictly positive values."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("geometric_mean of empty array")
    if np.any(x <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(x))))


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample, Graph500-report flavoured."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    stddev: float
    hmean: float | None  # None when any value is non-positive
    hmean_stderr: float | None

    def row(self) -> dict[str, float]:
        return {
            "n": self.n,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "mean": self.mean,
            "stddev": self.stddev,
            "hmean": float("nan") if self.hmean is None else self.hmean,
        }


def summarize(x: np.ndarray) -> Summary:
    """Summarize a sample the way the Graph500 output block does.

    The harmonic-mean standard error follows the reference code: the
    standard error of the reciprocals, propagated through the reciprocal
    transform (delta method).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("summarize of empty array")
    hmean = None
    hstderr = None
    if np.all(x > 0):
        hmean = harmonic_mean(x)
        if x.size > 1:
            recip = 1.0 / x
            se_recip = np.std(recip, ddof=1) / np.sqrt(x.size)
            hstderr = float(hmean * hmean * se_recip)
        else:
            hstderr = 0.0
    q1, med, q3 = np.percentile(x, [25, 50, 75])
    return Summary(
        n=int(x.size),
        minimum=float(x.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(x.max()),
        mean=float(x.mean()),
        stddev=float(np.std(x, ddof=1)) if x.size > 1 else 0.0,
        hmean=hmean,
        hmean_stderr=hstderr,
    )
