"""Deprecation plumbing for the legacy per-engine entry points.

The four historical functions (``distributed_sssp``, ``distributed_sssp_2d``,
``distributed_bfs``, ``delta_stepping``) remain supported as thin wrappers,
but :func:`repro.api.run` is the recommended entry point — one facade, one
signature, one :class:`~repro.api.RunSummary` shape for every engine.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_legacy"]


def warn_legacy(old_name: str, engine: str) -> None:
    """Emit the standard deprecation warning for a legacy entry point."""
    warnings.warn(
        f"{old_name}() is a legacy entry point; prefer "
        f"repro.api.run(graph, source, engine={engine!r}, ...), the unified "
        "facade (same answer, uniform RunSummary interface)",
        DeprecationWarning,
        stacklevel=3,
    )
