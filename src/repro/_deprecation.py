"""Deprecation plumbing for retired and aliased entry points.

The four historical functions (``distributed_sssp``, ``distributed_sssp_2d``,
``distributed_bfs``, ``delta_stepping``) spent one release as
DeprecationWarning wrappers and are now hard stubs: calling one raises
:class:`RuntimeError` pointing at :func:`repro.api.run` — one facade, one
kernel registry, one :class:`~repro.api.RunSummary` shape for every engine.
Aliases that still *work* but are discouraged (the ``engine="bfs"`` layout
alias, the CLI ``bfs`` subcommand) warn instead.
"""

from __future__ import annotations

import warnings
from typing import NoReturn

__all__ = ["legacy_removed", "warn_alias"]


def legacy_removed(old_name: str, replacement: str) -> NoReturn:
    """Raise the standard error for a retired legacy entry point."""
    raise RuntimeError(
        f"{old_name}() was removed; call {replacement} — the unified "
        "kernel-registry facade (same answer, uniform RunSummary interface)"
    )


def warn_alias(old_spelling: str, replacement: str) -> None:
    """Emit the standard deprecation warning for a still-working alias."""
    warnings.warn(
        f"{old_spelling} is a deprecated alias; prefer {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )
